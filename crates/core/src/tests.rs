//! Runtime-level tests: the full send/recv/RMA machinery across design
//! configurations.

use std::sync::Arc;

use crate::{
    Assignment, Counter, DesignConfig, LockModel, MatchMode, MpiError, ProgressMode, World,
    ANY_SOURCE, ANY_TAG,
};

fn two_rank_world(design: DesignConfig) -> World {
    World::builder().ranks(2).design(design).build()
}

/// Every interesting corner of the design space; tests that must hold for
/// all of them iterate this list.
fn all_designs() -> Vec<DesignConfig> {
    let mut out = Vec::new();
    for instances in [1usize, 4] {
        for assignment in [Assignment::RoundRobin, Assignment::Dedicated] {
            for progress in [ProgressMode::Serial, ProgressMode::Concurrent] {
                for matching in [MatchMode::PerCommunicator, MatchMode::Global] {
                    out.push(DesignConfig {
                        num_instances: instances,
                        assignment,
                        progress,
                        matching,
                        ..DesignConfig::default()
                    });
                }
            }
        }
    }
    out.push(DesignConfig {
        lock_model: LockModel::GlobalCriticalSection,
        ..DesignConfig::default()
    });
    out
}

#[test]
fn blocking_send_recv_across_threads() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || p0.send(b"payload", 1, 3, comm).unwrap());
    let msg = p1.recv(64, 0, 3, comm).unwrap();
    t.join().unwrap();
    assert_eq!(msg.data, b"payload");
    assert_eq!(msg.src, 0);
    assert_eq!(msg.tag, 3);
}

#[test]
fn send_recv_works_under_every_design() {
    for design in all_designs() {
        let world = two_rank_world(design);
        let comm = world.comm_world();
        let p0 = world.proc(0);
        let p1 = world.proc(1);
        let t = std::thread::spawn(move || {
            for i in 0..20u8 {
                p0.send(&[i], 1, i as i32, comm).unwrap();
            }
        });
        for i in 0..20u8 {
            let msg = p1.recv(8, 0, i as i32, comm).unwrap();
            assert_eq!(msg.data, vec![i], "design {design:?}");
        }
        t.join().unwrap();
    }
}

#[test]
fn fifo_order_within_a_sender_thread() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        for i in 0..100u32 {
            p0.send(&i.to_le_bytes(), 1, 0, comm).unwrap();
        }
    });
    for i in 0..100u32 {
        let msg = p1.recv(8, 0, 0, comm).unwrap();
        assert_eq!(msg.data, i.to_le_bytes(), "non-overtaking order violated");
    }
    t.join().unwrap();
}

#[test]
fn wildcard_receive_reports_identity() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || p0.send(b"x", 1, 42, comm).unwrap());
    let msg = p1.recv(8, ANY_SOURCE, ANY_TAG, comm).unwrap();
    t.join().unwrap();
    assert_eq!(msg.src, 0);
    assert_eq!(msg.tag, 42);
}

#[test]
fn nonblocking_requests_complete_via_test() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let rreq = p1.irecv(16, 0, 9, comm).unwrap();
    assert!(p1.test(&rreq).unwrap().is_none(), "nothing sent yet");
    let sreq = p0.isend(b"hi", 1, 9, comm).unwrap();
    // Drive both sides until done.
    let msg = loop {
        p0.progress();
        if let Some(m) = p1.test(&rreq).unwrap() {
            break m;
        }
    };
    assert_eq!(msg.data, b"hi");
    p0.wait(&sreq).unwrap();
}

#[test]
fn waitall_collects_in_request_order() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let reqs: Vec<_> = (0..10).map(|i| p1.irecv(8, 0, i, comm).unwrap()).collect();
    let t = std::thread::spawn(move || {
        for i in (0..10).rev() {
            p0.send(&[i as u8], 1, i, comm).unwrap();
        }
    });
    let msgs = p1.waitall(&reqs).unwrap();
    t.join().unwrap();
    for (i, m) in msgs.iter().enumerate() {
        assert_eq!(m.data, vec![i as u8]);
    }
}

#[test]
fn rendezvous_protocol_for_large_messages() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let big: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
    let expected = big.clone();
    let t = std::thread::spawn(move || p0.send(&big, 1, 0, comm).unwrap());
    let msg = p1.recv(200_000, 0, 0, comm).unwrap();
    t.join().unwrap();
    assert_eq!(msg.data, expected);
    // The counters show the rendezvous path was taken.
    assert_eq!(world.proc(0).spc().get(Counter::RendezvousSends), 1);
    assert_eq!(world.proc(0).spc().get(Counter::EagerSends), 0);
}

#[test]
fn rendezvous_handles_unexpected_rts() {
    // RTS arrives before the receive is posted: it must wait in the UMQ
    // and the transfer must start when the receive shows up.
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let big = vec![7u8; 50_000];
    let sreq = p0.isend(&big, 1, 5, comm).unwrap();
    // Let the RTS land unexpected.
    for _ in 0..10 {
        p1.progress();
    }
    let rreq = p1.irecv(64_000, 0, 5, comm).unwrap();
    // Drive both ranks: the CTS must be progressed by rank 0 before the
    // DATA can reach rank 1.
    let msg = loop {
        p0.progress();
        if let Some(m) = p1.test(&rreq).unwrap() {
            break m;
        }
    };
    assert_eq!(msg.data.len(), 50_000);
    p0.wait(&sreq).unwrap();
}

#[test]
fn truncation_is_reported() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || p0.send(&[0u8; 32], 1, 0, comm).unwrap());
    let err = p1.recv(8, 0, 0, comm).unwrap_err();
    t.join().unwrap();
    assert_eq!(
        err,
        MpiError::Truncated {
            message_len: 32,
            capacity: 8
        }
    );
}

#[test]
fn truncation_on_rendezvous_path() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let big = vec![1u8; 20_000];
    let t = std::thread::spawn(move || p0.send(&big, 1, 0, comm).unwrap());
    let err = p1.recv(1_000, 0, 0, comm).unwrap_err();
    t.join().unwrap();
    assert!(matches!(
        err,
        MpiError::Truncated {
            message_len: 20_000,
            ..
        }
    ));
}

#[test]
fn validation_errors() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    assert_eq!(
        p0.send(b"", 9, 0, comm).unwrap_err(),
        MpiError::InvalidRank(9)
    );
    assert_eq!(
        p0.send(b"", 1, -5, comm).unwrap_err(),
        MpiError::InvalidTag(-5)
    );
    assert!(matches!(
        p0.irecv(8, -7, 0, comm).unwrap_err(),
        MpiError::InvalidRank(-7)
    ));
    assert!(matches!(
        p0.irecv(8, 0, -3, comm).unwrap_err(),
        MpiError::InvalidTag(-3)
    ));
    let bogus = crate::Communicator { id: 999 };
    assert!(matches!(
        p0.isend(b"", 1, 0, bogus).unwrap_err(),
        MpiError::InvalidComm(999)
    ));
}

#[test]
fn probe_then_receive() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    assert!(p1.iprobe(ANY_SOURCE, ANY_TAG, comm).unwrap().is_none());
    let t = std::thread::spawn(move || p0.send(b"probe-me", 1, 11, comm).unwrap());
    let (src, tag) = p1.probe(ANY_SOURCE, ANY_TAG, comm).unwrap();
    assert_eq!((src, tag), (0, 11));
    let msg = p1.recv(16, src as i32, tag, comm).unwrap();
    assert_eq!(msg.data, b"probe-me");
    t.join().unwrap();
}

#[test]
fn cancel_unmatched_receive() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p1 = world.proc(1);
    let req = p1.irecv(8, 0, 0, comm).unwrap();
    assert!(p1.cancel_recv(&req, comm).unwrap());
    assert_eq!(p1.wait(&req).unwrap_err(), MpiError::Cancelled);
}

#[test]
fn sendrecv_exchanges() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || p1.sendrecv(b"from1", 0, 1, 16, 0, 0, comm).unwrap());
    let got0 = p0.sendrecv(b"from0", 1, 0, 16, 1, 1, comm).unwrap();
    let got1 = t.join().unwrap();
    assert_eq!(got0.data, b"from1");
    assert_eq!(got1.data, b"from0");
}

#[test]
fn many_threads_per_rank_concurrent_traffic() {
    // The paper's core scenario: several threads of the same rank send to
    // matching threads of the peer, each pair on its own tag.
    for design in [
        DesignConfig::default(),
        DesignConfig::builder().proposed(4).build().unwrap(),
        DesignConfig {
            matching: MatchMode::Global,
            ..DesignConfig::builder().proposed(4).build().unwrap()
        },
    ] {
        let world = Arc::new(two_rank_world(design));
        let comm = world.comm_world();
        let threads = 4;
        let msgs = 50u32;
        let mut handles = Vec::new();
        for t in 0..threads {
            let p0 = world.proc(0);
            handles.push(std::thread::spawn(move || {
                for i in 0..msgs {
                    p0.send(&i.to_le_bytes(), 1, t, comm).unwrap();
                }
            }));
            let p1 = world.proc(1);
            handles.push(std::thread::spawn(move || {
                for i in 0..msgs {
                    let m = p1.recv(8, 0, t, comm).unwrap();
                    assert_eq!(m.data, i.to_le_bytes(), "per-thread FIFO broken");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

#[test]
fn per_pair_communicators_match_concurrently() {
    // Fig. 3c's setup: a communicator per thread pair.
    let world = Arc::new(two_rank_world(
        DesignConfig::builder().proposed(4).build().unwrap(),
    ));
    let comms: Vec<_> = (0..4).map(|_| world.new_comm()).collect();
    let mut handles = Vec::new();
    for (t, &comm) in comms.iter().enumerate() {
        let p0 = world.proc(0);
        let p1 = world.proc(1);
        handles.push(std::thread::spawn(move || {
            for i in 0..50u32 {
                p0.send(&i.to_le_bytes(), 1, 0, comm).unwrap();
            }
        }));
        handles.push(std::thread::spawn(move || {
            for i in 0..50u32 {
                let m = p1.recv(8, 0, 0, comm).unwrap();
                assert_eq!(m.data, i.to_le_bytes(), "pair {t}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn overtaking_comm_relaxes_order_but_delivers_everything() {
    let world = two_rank_world(DesignConfig::builder().proposed(4).build().unwrap());
    let comm = world.new_comm_with(true);
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let n = 200u32;
    let t = {
        let p0 = p0.clone();
        std::thread::spawn(move || {
            for i in 0..n {
                p0.send(&i.to_le_bytes(), 1, 0, comm).unwrap();
            }
        })
    };
    let mut seen: Vec<u32> = (0..n)
        .map(|_| {
            let m = p1.recv(8, 0, 0, comm).unwrap();
            u32::from_le_bytes(m.data.try_into().unwrap())
        })
        .collect();
    t.join().unwrap();
    seen.sort_unstable();
    assert_eq!(seen, (0..n).collect::<Vec<_>>(), "all messages delivered");
    assert_eq!(
        world.proc(1).spc().get(Counter::OutOfSequenceMessages),
        0,
        "no sequence validation on an overtaking communicator"
    );
}

#[test]
fn collectives_work() {
    let world = Arc::new(World::builder().ranks(4).build());
    let comm = world.comm_world();
    let handles: Vec<_> = (0..4)
        .map(|r| {
            let p = world.proc(r);
            std::thread::spawn(move || {
                p.barrier(comm).unwrap();
                let got = p.bcast(b"seed", 0, comm).unwrap();
                assert_eq!(got, b"seed");
                let sum = p.allreduce_sum(r as u64 + 1, comm).unwrap();
                assert_eq!(sum, 1 + 2 + 3 + 4);
                let gathered = p.gather(&[r as u8], 0, comm).unwrap();
                if r == 0 {
                    let g = gathered.unwrap();
                    assert_eq!(g, vec![vec![0u8], vec![1], vec![2], vec![3]]);
                } else {
                    assert!(gathered.is_none());
                }
                p.barrier(comm).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn rma_put_get_flush() {
    let world = two_rank_world(DesignConfig::default());
    let id = world.allocate_window(64);
    let w0 = world.proc(0).window(id).unwrap();
    let w1 = world.proc(1).window(id).unwrap();
    w0.put(1, 8, &[1, 2, 3, 4]).unwrap();
    w0.flush(1).unwrap();
    assert_eq!(w1.read_local(8, 4).unwrap(), vec![1, 2, 3, 4]);
    assert_eq!(w0.get(1, 8, 4).unwrap(), vec![1, 2, 3, 4]);
    w0.flush_all();
    assert_eq!(w0.pending_toward(1), 0);
    assert_eq!(world.proc(0).spc().get(Counter::RmaPuts), 1);
    assert_eq!(world.proc(0).spc().get(Counter::RmaGets), 1);
}

#[test]
fn rma_bounds_and_alignment_errors() {
    let world = two_rank_world(DesignConfig::default());
    let id = world.allocate_window(16);
    let w = world.proc(0).window(id).unwrap();
    assert!(matches!(
        w.put(1, 12, &[0u8; 8]).unwrap_err(),
        MpiError::WindowOutOfRange { .. }
    ));
    assert!(matches!(
        w.fetch_add(1, 4, 1).unwrap_err(),
        MpiError::MisalignedAtomic(4)
    ));
    assert!(matches!(
        w.put(5, 0, &[0]).unwrap_err(),
        MpiError::InvalidRank(5)
    ));
    assert!(world.proc(0).window(crate::WindowId(99)).is_err());
}

#[test]
fn rma_accumulate_is_atomic_across_threads() {
    let world = Arc::new(two_rank_world(
        DesignConfig::builder().proposed(4).build().unwrap(),
    ));
    let id = world.allocate_window(8);
    let threads = 4;
    let adds_per_thread = 500u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let w = world.proc(0).window(id).unwrap();
                for _ in 0..adds_per_thread {
                    w.fetch_add(1, 0, 1).unwrap();
                }
                w.flush(1).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let w1 = world.proc(1).window(id).unwrap();
    let bytes = w1.read_local(0, 8).unwrap();
    let total = u64::from_le_bytes(bytes.try_into().unwrap());
    assert_eq!(total, threads as u64 * adds_per_thread);
}

#[test]
fn rma_fence_synchronizes_epochs() {
    let world = Arc::new(two_rank_world(DesignConfig::default()));
    let id = world.allocate_window(8);
    let handles: Vec<_> = (0..2u32)
        .map(|r| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let w = world.proc(r).window(id).unwrap();
                // Everyone writes its rank+1 into the peer's first lane.
                w.put(1 - r, 0, &(r as u64 + 1).to_le_bytes()).unwrap();
                w.fence();
                let bytes = w.read_local(0, 8).unwrap();
                u64::from_le_bytes(bytes.try_into().unwrap())
            })
        })
        .collect();
    let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results, vec![2, 1]);
}

#[test]
fn rma_exclusive_epoch_excludes() {
    let world = two_rank_world(DesignConfig::default());
    let id = world.allocate_window(8);
    let w = world.proc(0).window(id).unwrap();
    let guard = w.lock_exclusive(1).unwrap();
    // A shared lock attempt from another handle must block; verify via a
    // thread that only finishes after we drop the guard.
    let w2 = world.proc(0).window(id).unwrap();
    let t = std::thread::spawn(move || {
        let _shared = w2.lock_shared(1).unwrap();
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    assert!(!t.is_finished(), "shared epoch must wait for exclusive");
    drop(guard);
    t.join().unwrap();
}

#[test]
fn compare_swap_round_trip() {
    let world = two_rank_world(DesignConfig::default());
    let id = world.allocate_window(8);
    let w = world.proc(0).window(id).unwrap();
    assert_eq!(w.compare_swap(1, 0, 0, 42).unwrap(), 0);
    assert_eq!(w.compare_swap(1, 0, 0, 7).unwrap(), 42, "miss");
    assert_eq!(w.compare_swap(1, 0, 42, 7).unwrap(), 42, "hit");
    w.flush(1).unwrap();
    let w1 = world.proc(1).window(id).unwrap();
    let v = u64::from_le_bytes(w1.read_local(0, 8).unwrap().try_into().unwrap());
    assert_eq!(v, 7);
}

#[test]
fn window_free_invalidates() {
    let world = two_rank_world(DesignConfig::default());
    let id = world.allocate_window(8);
    world.free_window(id).unwrap();
    assert!(world.proc(0).window(id).is_err());
    assert!(world.free_window(id).is_err());
}

#[test]
fn spc_counts_basic_traffic() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        for _ in 0..10 {
            p0.send(&[], 1, 0, comm).unwrap();
        }
    });
    for _ in 0..10 {
        p1.recv(0, 0, 0, comm).unwrap();
    }
    t.join().unwrap();
    let s0 = world.proc(0).spc_snapshot();
    let s1 = world.proc(1).spc_snapshot();
    assert_eq!(s0[Counter::MessagesSent], 10);
    assert_eq!(s1[Counter::MessagesReceived], 10);
    assert_eq!(s0[Counter::BytesSent], 280, "10 envelopes of 28 bytes");
    assert_eq!(s0[Counter::EagerSends], 10);
    let merged = world.spc_merged();
    assert_eq!(merged[Counter::MessagesSent], 10);
    assert_eq!(merged[Counter::MessagesReceived], 10);
}

#[test]
fn wait_any_returns_the_first_completion() {
    let world = two_rank_world(DesignConfig::default());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    // Two receives; only the second's message is sent first.
    let r1 = p1.irecv(8, 0, 1, comm).unwrap();
    let r2 = p1.irecv(8, 0, 2, comm).unwrap();
    let t = std::thread::spawn(move || {
        p0.send(b"two", 1, 2, comm).unwrap();
        p0.send(b"one", 1, 1, comm).unwrap();
    });
    let (idx, msg) = p1.wait_any(&[r1.clone(), r2.clone()]).unwrap();
    // Whichever completed first, index and payload must agree.
    match idx {
        0 => {
            assert_eq!(msg.data, b"one");
            assert_eq!(p1.wait(&r2).unwrap().data, b"two");
        }
        1 => {
            assert_eq!(msg.data, b"two");
            assert_eq!(p1.wait(&r1).unwrap().data, b"one");
        }
        other => panic!("invalid index {other}"),
    }
    t.join().unwrap();
    assert!(p1.wait_any(&[]).is_err());
}

#[test]
fn dedicated_instances_show_no_try_lock_failures_single_thread() {
    let world = two_rank_world(DesignConfig::builder().proposed(2).build().unwrap());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        for _ in 0..50 {
            p0.send(&[], 1, 0, comm).unwrap();
        }
    });
    for _ in 0..50 {
        p1.recv(0, 0, 0, comm).unwrap();
    }
    t.join().unwrap();
}

// ---- software offload ----

#[test]
fn offload_world_round_trips_eager_and_rendezvous() {
    let world = two_rank_world(DesignConfig::builder().offload(2).build().unwrap());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let big = world.fabric_config().eager_threshold + 100;
    let t = std::thread::spawn(move || {
        p0.send(b"eager", 1, 1, comm).unwrap();
        p0.send(&vec![7u8; big], 1, 2, comm).unwrap();
    });
    assert_eq!(p1.recv(64, 0, 1, comm).unwrap().data, b"eager");
    let msg = p1.recv(big + 1, 0, 2, comm).unwrap();
    assert_eq!(msg.data.len(), big);
    t.join().unwrap();
    let spc = world.spc_merged();
    assert!(
        spc.get(Counter::OffloadCommands) >= 4,
        "sends and recvs went through the command queue"
    );
    assert!(spc.get(Counter::OffloadBatches) >= 1);
}

#[test]
fn offload_preserves_recv_posting_order() {
    // Two same-signature receives posted back to back must match the two
    // messages in order, no matter which worker drains which descriptor.
    let world = two_rank_world(DesignConfig::builder().offload(4).build().unwrap());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    for round in 0..50u8 {
        let r1 = p1.irecv(8, 0, 3, comm).unwrap();
        let r2 = p1.irecv(8, 0, 3, comm).unwrap();
        let p0c = p0.clone();
        let t = std::thread::spawn(move || {
            p0c.send(&[round, 1], 1, 3, comm).unwrap();
            p0c.send(&[round, 2], 1, 3, comm).unwrap();
        });
        assert_eq!(p1.wait(&r1).unwrap().data, [round, 1]);
        assert_eq!(p1.wait(&r2).unwrap().data, [round, 2]);
        t.join().unwrap();
    }
}

#[test]
fn offload_rma_put_flush_through_the_command_queue() {
    let world = two_rank_world(DesignConfig::builder().offload(1).build().unwrap());
    let id = world.allocate_window(64);
    let origin = world.proc(0).window(id).unwrap();
    let target = world.proc(1).window(id).unwrap();
    origin.put(1, 0, &[1, 2, 3, 4]).unwrap();
    origin.flush(1).unwrap();
    assert_eq!(target.read_local(0, 4).unwrap(), vec![1, 2, 3, 4]);
    let spc = world.spc_merged();
    assert_eq!(spc.get(Counter::RmaPuts), 1);
    assert_eq!(spc.get(Counter::RmaFlushes), 1);
}

#[test]
fn offload_world_drop_joins_workers_and_handles_stay_usable() {
    let world = two_rank_world(DesignConfig::builder().offload(2).build().unwrap());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    p0.send(b"pre-drop", 1, 9, comm).unwrap();
    drop(world);
    // The engine is gone; handles fall back to the direct path.
    assert_eq!(p1.recv(64, 0, 9, comm).unwrap().data, b"pre-drop");
    p0.send(b"post-drop", 1, 9, comm).unwrap();
    assert_eq!(p1.recv(64, 0, 9, comm).unwrap().data, b"post-drop");
}
