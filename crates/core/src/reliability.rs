//! The reliability layer: per-peer sequence-tracked ack/retransmit.
//!
//! Built only when a fault plan is armed — a chaos-free world never
//! allocates this state and its send path is untouched. With a plan active,
//! every transport frame (eager, RTS, CTS, DATA) gets a per-destination
//! transport sequence number (`tseq`) and is parked here until the receiver
//! acknowledges it. The progress engine's tick retransmits frames whose
//! deadline passed, doubling the timeout each attempt (exponential backoff)
//! up to the plan's retry budget; past the budget the frame's request fails
//! with [`MpiError::RetryExhausted`].
//!
//! The transport sequence is deliberately distinct from the matching
//! engine's user-visible sequence: `tseq` exists so each *frame* is
//! delivered exactly once per peer (duplicate suppression keyed on
//! `(src rank, tseq)`), while the matcher's `seq` restores MPI FIFO order
//! per (communicator, destination) — including across retransmissions,
//! which may arrive long after their successors. Overtaking communicators
//! skip the matcher's ordering but still get exactly-once delivery here.
//!
//! [`MpiError::RetryExhausted`]: crate::MpiError::RetryExhausted

use fairmpi_sync::atomic::{AtomicU64, Ordering};
use fairmpi_sync::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

use fairmpi_chaos::FaultPlan;
use fairmpi_fabric::{Packet, Rank};
use fairmpi_spc::{Counter, SpcSet};
use fairmpi_trace as trace;

/// One transmitted frame awaiting its ack or its retransmit deadline.
#[derive(Debug, Clone)]
pub(crate) struct PendingFrame {
    /// The frame as it goes on the wire (tseq already assigned).
    pub(crate) packet: Packet,
    /// Completion-queue token the frame was carrying (0 for control).
    pub(crate) cq_token: u64,
    /// Retransmit attempts so far.
    pub(crate) attempts: u32,
    /// When the next retransmit fires.
    deadline: Instant,
}

/// Send side of one (this rank → peer) channel.
#[derive(Debug, Default)]
struct SendChannel {
    next_tseq: u64,
    unacked: HashMap<u64, PendingFrame>,
}

/// Receive side of one (peer → this rank) channel: which tseqs arrived.
///
/// Public so `fairmpi-check` can model-check the suppression logic under
/// racing deliveries — the runtime itself only uses it behind a
/// [`Mutex`] inside [`Reliability`].
#[derive(Debug, Default)]
pub struct DedupWindow {
    /// Every tseq in `1..=floor` has been accepted.
    floor: u64,
    /// Accepted tseqs above the floor (out-of-order arrivals).
    above: BTreeSet<u64>,
}

impl DedupWindow {
    /// Empty window: no tseq accepted yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an arrival; `false` means this tseq was already accepted
    /// (a wire duplicate or a retransmission racing its own ack).
    pub fn accept(&mut self, tseq: u64) -> bool {
        if tseq <= self.floor || !self.above.insert(tseq) {
            return false;
        }
        while self.above.remove(&(self.floor + 1)) {
            self.floor += 1;
        }
        true
    }
}

/// What one reliability tick wants done: frames to re-inject, frames whose
/// retry budget ran out, and the backoff scheduled by this tick.
pub(crate) struct TickWork {
    pub(crate) retransmit: Vec<Packet>,
    pub(crate) exhausted: Vec<PendingFrame>,
    pub(crate) backoff_ns: u64,
}

/// Per-rank reliability state: one send and one receive channel per peer.
#[derive(Debug)]
pub(crate) struct Reliability {
    plan: FaultPlan,
    send: Vec<Mutex<SendChannel>>,
    recv: Vec<Mutex<DedupWindow>>,
}

impl Reliability {
    pub(crate) fn new(plan: FaultPlan, num_ranks: usize) -> Self {
        Self {
            plan,
            send: (0..num_ranks).map(|_| Mutex::default()).collect(),
            recv: (0..num_ranks).map(|_| Mutex::default()).collect(),
        }
    }

    fn timeout(&self) -> Duration {
        Duration::from_nanos(self.plan.timeout_ns)
    }

    /// Assign the next transport sequence toward the packet's destination
    /// and park a copy for retransmission until acked.
    pub(crate) fn register(&self, packet: &mut Packet, cq_token: u64) {
        let mut ch = self.send[packet.envelope.dst as usize].lock();
        ch.next_tseq += 1;
        packet.tseq = ch.next_tseq;
        ch.unacked.insert(
            packet.tseq,
            PendingFrame {
                packet: packet.clone(),
                cq_token,
                attempts: 0,
                deadline: Instant::now() + self.timeout(),
            },
        );
    }

    /// An ack (or a local failure) retires the frame; returns it so the
    /// caller can complete — or fail — the user request it carried. `None`
    /// for duplicate acks.
    pub(crate) fn retire(&self, peer: Rank, tseq: u64) -> Option<PendingFrame> {
        self.send[peer as usize].lock().unacked.remove(&tseq)
    }

    /// Pull a frame's deadline to "now" so the next tick re-injects it
    /// immediately (used when injection was transiently refused).
    pub(crate) fn expire_now(&self, peer: Rank, tseq: u64) {
        if let Some(f) = self.send[peer as usize].lock().unacked.get_mut(&tseq) {
            f.deadline = Instant::now();
        }
    }

    /// Receiver-side dedup: `true` if this `(src, tseq)` is new.
    pub(crate) fn accept(&self, src: Rank, tseq: u64) -> bool {
        self.recv[src as usize].lock().accept(tseq)
    }

    /// Frames still awaiting acknowledgment (drain conditions/diagnostics).
    pub(crate) fn in_flight(&self) -> usize {
        self.send.iter().map(|ch| ch.lock().unacked.len()).sum()
    }

    /// Sweep every channel for frames past their deadline. Expired frames
    /// within budget get their attempt count bumped and their deadline
    /// pushed out exponentially (timeout × 2^attempts, capped at 2^6) and
    /// are returned for re-injection; frames past the budget are removed
    /// and returned as exhausted.
    pub(crate) fn tick(&self, now: Instant) -> TickWork {
        let mut work = TickWork {
            retransmit: Vec::new(),
            exhausted: Vec::new(),
            backoff_ns: 0,
        };
        for ch in &self.send {
            let mut ch = ch.lock();
            let mut dead = Vec::new();
            for (&tseq, frame) in ch.unacked.iter_mut() {
                if frame.deadline > now {
                    continue;
                }
                if frame.attempts >= self.plan.max_retries {
                    dead.push(tseq);
                    continue;
                }
                frame.attempts += 1;
                let backoff = self
                    .plan
                    .timeout_ns
                    .saturating_mul(1 << frame.attempts.min(6));
                frame.deadline = now + Duration::from_nanos(backoff);
                work.backoff_ns += backoff;
                work.retransmit.push(frame.packet.clone());
            }
            for tseq in dead {
                work.exhausted
                    .push(ch.unacked.remove(&tseq).expect("expired frame present"));
            }
        }
        work
    }
}

/// Progress stall detector, armed only under a fault plan.
///
/// Every engine pass reports whether it produced an event; a window of
/// `FAIRMPI_WATCHDOG_NS` (default 50 ms) with passes but no events trips the
/// watchdog, which is recorded as an SPC event (`watchdog_trips`) and a trace
/// instant rather than an abort — the figures show *where* recovery stalled,
/// the runtime keeps retrying. The window resets on every trip so a
/// persistent stall is counted once per window, not once per pass.
#[derive(Debug)]
pub(crate) struct Watchdog {
    epoch: Instant,
    last_event_ns: AtomicU64,
    budget_ns: u64,
}

/// Stall window before the watchdog trips (default 50 ms).
const WATCHDOG_NS: crate::env::EnvKey<u64> = crate::env::EnvKey::new("FAIRMPI_WATCHDOG_NS");

impl Watchdog {
    pub(crate) fn new() -> Self {
        let budget_ns = WATCHDOG_NS.get().filter(|&ns| ns > 0).unwrap_or(50_000_000);
        Self {
            epoch: Instant::now(),
            last_event_ns: AtomicU64::new(0),
            budget_ns,
        }
    }

    /// Record the outcome of one progress pass.
    pub(crate) fn observe(&self, made_progress: bool, spc: &SpcSet) {
        let now = self.epoch.elapsed().as_nanos() as u64;
        if made_progress {
            self.last_event_ns.store(now, Ordering::Relaxed);
            return;
        }
        let last = self.last_event_ns.load(Ordering::Relaxed);
        if now.saturating_sub(last) > self.budget_ns
            && self
                .last_event_ns
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            // The compare-exchange makes concurrent pollers agree on one
            // trip per window.
            spc.inc(Counter::WatchdogTrips);
            trace::instant("watchdog.trip");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmpi_fabric::Envelope;

    fn packet(dst: Rank) -> Packet {
        Packet::eager(
            Envelope {
                src: 0,
                dst,
                comm: 0,
                tag: 0,
                seq: 1,
            },
            vec![7],
        )
    }

    fn rel(timeout_ns: u64, retries: u32) -> Reliability {
        Reliability::new(
            FaultPlan::seeded(1)
                .drop(1)
                .timeout_ns(timeout_ns)
                .max_retries(retries),
            2,
        )
    }

    #[test]
    fn tseqs_are_per_peer_and_monotone() {
        let r = rel(1_000_000, 3);
        let mut a = packet(1);
        let mut b = packet(1);
        let mut c = packet(0);
        r.register(&mut a, 10);
        r.register(&mut b, 11);
        r.register(&mut c, 12);
        assert_eq!((a.tseq, b.tseq), (1, 2));
        assert_eq!(c.tseq, 1, "each peer has its own sequence space");
        assert_eq!(r.in_flight(), 3);
    }

    #[test]
    fn retire_completes_once() {
        let r = rel(1_000_000, 3);
        let mut p = packet(1);
        r.register(&mut p, 42);
        let frame = r.retire(1, p.tseq).expect("first ack retires");
        assert_eq!(frame.cq_token, 42);
        assert!(r.retire(1, p.tseq).is_none(), "duplicate ack is a no-op");
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn dedup_accepts_each_tseq_once_in_any_order() {
        let r = rel(1_000_000, 3);
        assert!(r.accept(1, 2), "out-of-order arrival accepted");
        assert!(r.accept(1, 1));
        assert!(!r.accept(1, 1), "duplicate below the floor");
        assert!(!r.accept(1, 2), "duplicate absorbed into the floor");
        assert!(r.accept(1, 3));
        assert!(r.accept(0, 1), "channels are per-peer");
    }

    #[test]
    fn tick_backs_off_exponentially_then_exhausts() {
        let r = rel(100, 2);
        let mut p = packet(1);
        r.register(&mut p, 5);
        let start = Instant::now();
        // First expiry: attempt 1, backoff 100 * 2.
        let w = r.tick(start + Duration::from_nanos(200));
        assert_eq!(w.retransmit.len(), 1);
        assert_eq!(w.backoff_ns, 200);
        // Second expiry: attempt 2, backoff 100 * 4.
        let w = r.tick(start + Duration::from_micros(1));
        assert_eq!(w.retransmit.len(), 1);
        assert_eq!(w.backoff_ns, 400);
        // Third expiry: budget (2 retries) exhausted.
        let w = r.tick(start + Duration::from_micros(10));
        assert!(w.retransmit.is_empty());
        assert_eq!(w.exhausted.len(), 1);
        assert_eq!(w.exhausted[0].attempts, 2);
        assert_eq!(r.in_flight(), 0, "exhausted frame is removed");
    }

    #[test]
    fn unexpired_frames_stay_parked() {
        let r = rel(1_000_000_000, 3);
        let mut p = packet(1);
        r.register(&mut p, 1);
        let w = r.tick(Instant::now());
        assert!(w.retransmit.is_empty() && w.exhausted.is_empty());
        assert_eq!(r.in_flight(), 1);
    }

    #[test]
    fn watchdog_trips_once_per_stall_window() {
        let w = Watchdog {
            epoch: Instant::now() - Duration::from_secs(10),
            last_event_ns: AtomicU64::new(0),
            budget_ns: 5_000_000_000, // 10s of apparent silence vs a 5s budget
        };
        let spc = SpcSet::new();
        w.observe(false, &spc);
        assert_eq!(spc.get(Counter::WatchdogTrips), 1, "stalled past budget");
        w.observe(false, &spc);
        assert_eq!(
            spc.get(Counter::WatchdogTrips),
            1,
            "window reset on trip: the same stall is not recounted"
        );
    }

    #[test]
    fn expire_now_forces_immediate_retransmit() {
        let r = rel(1_000_000_000, 3);
        let mut p = packet(1);
        r.register(&mut p, 1);
        r.expire_now(1, p.tseq);
        let w = r.tick(Instant::now() + Duration::from_nanos(1));
        assert_eq!(w.retransmit.len(), 1);
    }
}
