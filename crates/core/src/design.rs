//! The design space of the study: every axis the paper varies.

use crate::error::{MpiError, Result};

pub use fairmpi_chaos::FaultPlan;
pub use fairmpi_cri::Assignment;
pub use fairmpi_progress::ProgressMode;

/// How matching state is laid out (the Fig. 3b vs Fig. 3c axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchMode {
    /// OB1-style: one matcher (and one matching lock) per communicator, so
    /// threads on different communicators match concurrently.
    PerCommunicator,
    /// MPICH/UCX-style: a single global matcher and lock for the whole
    /// process, regardless of communicator.
    Global,
}

/// Coarse locking model, used to emulate other implementations' threading
/// designs for the Fig. 5 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockModel {
    /// The paper's design: per-instance locks only.
    PerInstance,
    /// A process-wide critical section around every MPI call (send
    /// initiation and each progress pass) — the classic "big lock" of
    /// `MPI_THREAD_MULTIPLE` support in most implementations.
    GlobalCriticalSection,
}

/// MPI threading levels (paper §II-A). The runtime always *grants*
/// `Multiple`; lower levels only relax internal protection the way real
/// implementations do, and are provided for completeness of the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadLevel {
    /// One thread per process.
    Single,
    /// Many threads, only the main thread calls MPI.
    Funneled,
    /// Many threads call MPI, never concurrently.
    Serialized,
    /// Full thread concurrency — the subject of the study.
    Multiple,
}

/// What happens when an operation fails irrecoverably (retry budget
/// exhausted, every instance dead) — the MPI error-handler axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorHandler {
    /// `MPI_ERRORS_RETURN`: the failed request's `wait` returns the error
    /// and the rest of the world keeps running.
    ErrorsReturn,
    /// `MPI_ERRORS_ARE_FATAL`: the first irrecoverable failure panics the
    /// observing thread (the closest in-process analog of aborting the job).
    ErrorsAreFatal,
}

/// The complete internal design configuration of one [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignConfig {
    /// Number of communication resources instances to allocate per rank
    /// (clamped by the fabric's hardware context limit).
    pub num_instances: usize,
    /// How threads are assigned an instance (Algorithm 1).
    pub assignment: Assignment,
    /// Serial or concurrent progress engine (Algorithm 2).
    pub progress: ProgressMode,
    /// Per-communicator or global matching.
    pub matching: MatchMode,
    /// Per-instance locks, or a global critical section emulating big-lock
    /// implementations.
    pub lock_model: LockModel,
    /// Default `mpi_assert_allow_overtaking` for new communicators.
    pub allow_overtaking: bool,
    /// Requested threading level.
    pub thread_level: ThreadLevel,
    /// Number of dedicated offload (communication) worker threads; 0
    /// disables offload and application threads drive the engine directly.
    /// With offload enabled, every `isend`/`irecv`/`put`/`flush` enqueues a
    /// descriptor on a lock-free command queue instead of touching the CRI
    /// and matching locks.
    pub offload_workers: usize,
    /// Optional deterministic fault plan. `None` (the default) leaves the
    /// fabric a perfect wire and the reliability layer entirely unbuilt —
    /// the happy path is bit-identical to a chaos-free build. A world also
    /// picks up a plan from `FAIRMPI_CHAOS_*` env keys when this is unset.
    pub chaos: Option<FaultPlan>,
    /// Error-handler semantics for irrecoverable transport failures.
    pub error_handler: ErrorHandler,
}

impl Default for DesignConfig {
    /// The *original* Open MPI multithreaded design the paper starts from:
    /// one shared instance, serialized progress, per-communicator (OB1)
    /// matching, ordering enforced.
    fn default() -> Self {
        Self {
            num_instances: 1,
            assignment: Assignment::RoundRobin,
            progress: ProgressMode::Serial,
            matching: MatchMode::PerCommunicator,
            lock_model: LockModel::PerInstance,
            allow_overtaking: false,
            thread_level: ThreadLevel::Multiple,
            offload_workers: 0,
            chaos: None,
            error_handler: ErrorHandler::ErrorsReturn,
        }
    }
}

impl DesignConfig {
    /// Start building a design from the baseline defaults. The builder is
    /// the only construction path that validates axis combinations; the
    /// plain struct stays `Copy`/public for preset-style updates of an
    /// already-validated config.
    pub fn builder() -> DesignConfigBuilder {
        DesignConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Typed, validating builder for [`DesignConfig`], replacing the former
/// positional constructors (`proposed`, `offload`, `chaos`,
/// `error_handler`). Start from [`DesignConfig::builder`], optionally jump
/// to a named design point with [`DesignConfigBuilder::proposed`] /
/// [`DesignConfigBuilder::offload`], adjust individual axes, and finish
/// with [`DesignConfigBuilder::build`] — which rejects combinations the
/// runtime cannot honor instead of silently misbehaving.
#[derive(Debug, Clone, Copy)]
pub struct DesignConfigBuilder {
    config: DesignConfig,
}

impl DesignConfigBuilder {
    /// The paper's full proposal: `n` dedicated CRIs, concurrent progress.
    /// (Concurrent *matching* additionally requires the application to use
    /// one communicator per thread pair, as in Fig. 3c.)
    pub fn proposed(mut self, num_instances: usize) -> Self {
        self.config.num_instances = num_instances;
        self.config.assignment = Assignment::Dedicated;
        self.config.progress = ProgressMode::Concurrent;
        self
    }

    /// The software-offload design point: `workers` dedicated communication
    /// threads, each owning its own CRI (dedicated assignment, concurrent
    /// progress), fed by a lock-free command queue. Application threads
    /// never take the instance or matching locks on the fast path. Zero
    /// workers would be "offload to nobody" and clamps to one.
    pub fn offload(mut self, workers: usize) -> Self {
        let workers = workers.max(1);
        self.config.num_instances = workers;
        self.config.assignment = Assignment::Dedicated;
        self.config.progress = ProgressMode::Concurrent;
        self.config.offload_workers = workers;
        self
    }

    /// Number of communication resource instances per rank.
    pub fn num_instances(mut self, n: usize) -> Self {
        self.config.num_instances = n;
        self
    }

    /// Thread-to-instance assignment policy (Algorithm 1).
    pub fn assignment(mut self, assignment: Assignment) -> Self {
        self.config.assignment = assignment;
        self
    }

    /// Serial or concurrent progress engine (Algorithm 2).
    pub fn progress(mut self, progress: ProgressMode) -> Self {
        self.config.progress = progress;
        self
    }

    /// Per-communicator or global matching.
    pub fn matching(mut self, matching: MatchMode) -> Self {
        self.config.matching = matching;
        self
    }

    /// Per-instance locks or a global critical section.
    pub fn lock_model(mut self, lock_model: LockModel) -> Self {
        self.config.lock_model = lock_model;
        self
    }

    /// Default `mpi_assert_allow_overtaking` for new communicators.
    pub fn allow_overtaking(mut self, allow: bool) -> Self {
        self.config.allow_overtaking = allow;
        self
    }

    /// Requested threading level.
    pub fn thread_level(mut self, level: ThreadLevel) -> Self {
        self.config.thread_level = level;
        self
    }

    /// Number of dedicated offload worker threads (0 disables offload).
    /// Unlike [`DesignConfigBuilder::offload`], this sets only the worker
    /// count — combine with the other axes explicitly.
    pub fn offload_workers(mut self, workers: usize) -> Self {
        self.config.offload_workers = workers;
        self
    }

    /// Arm a deterministic fault plan on worlds built from this config.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.config.chaos = Some(plan);
        self
    }

    /// Select the error-handler semantics for irrecoverable failures.
    pub fn error_handler(mut self, handler: ErrorHandler) -> Self {
        self.config.error_handler = handler;
        self
    }

    /// Validate and return the config.
    ///
    /// Rejected combinations:
    /// * `num_instances == 0` — the rank could never communicate;
    /// * `offload_workers > 0` with [`LockModel::GlobalCriticalSection`] —
    ///   offload exists precisely to keep application threads out of the
    ///   runtime's locks, while the big-lock emulation serializes every
    ///   call; a world honoring both would measure neither design.
    pub fn build(self) -> Result<DesignConfig> {
        let c = self.config;
        if c.num_instances == 0 {
            return Err(MpiError::InvalidDesign(
                "at least one communication instance is required",
            ));
        }
        if c.offload_workers > 0 && c.lock_model == LockModel::GlobalCriticalSection {
            return Err(MpiError::InvalidDesign(
                "offload workers under a global critical section",
            ));
        }
        Ok(c)
    }
}

/// Named design points used in the paper's Fig. 5 comparison.
///
/// The Intel MPI and MPICH entries are *emulations of those
/// implementations' documented threading designs* (a global critical
/// section protecting communication and progress), not their code; see
/// DESIGN.md §1. Process-mode entries use single-threaded ranks, where all
/// implementations behave alike up to constant factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPreset {
    /// Open MPI in process mode (communication between processes).
    OmpiProcess,
    /// Open MPI 4.0 threaded baseline: 1 instance, serial progress.
    OmpiThread,
    /// Baseline plus multiple CRIs with dedicated assignment ("OMPI Thread
    /// + CRIs", dark red in Fig. 5).
    OmpiThreadCris,
    /// CRIs plus concurrent progress plus concurrent matching ("OMPI Thread
    /// + CRIs*", black dotted in Fig. 5). Requires a communicator per pair.
    OmpiThreadCrisStar,
    /// Intel-MPI-like threaded design: global critical section.
    ImpiThreadEmulated,
    /// MPICH-like threaded design: global critical section plus a single
    /// global matching queue.
    MpichThreadEmulated,
    /// Intel-MPI-like process mode (same machinery as `OmpiProcess`).
    ImpiProcessEmulated,
    /// MPICH-like process mode.
    MpichProcessEmulated,
}

impl DesignPreset {
    /// All presets, in the order Fig. 5's legend lists them.
    pub const ALL: [DesignPreset; 8] = [
        DesignPreset::OmpiProcess,
        DesignPreset::OmpiThread,
        DesignPreset::OmpiThreadCris,
        DesignPreset::OmpiThreadCrisStar,
        DesignPreset::ImpiProcessEmulated,
        DesignPreset::ImpiThreadEmulated,
        DesignPreset::MpichProcessEmulated,
        DesignPreset::MpichThreadEmulated,
    ];

    /// Whether this preset runs in process mode (pairs of single-threaded
    /// ranks) rather than thread mode (two ranks, many threads).
    pub fn is_process_mode(self) -> bool {
        matches!(
            self,
            DesignPreset::OmpiProcess
                | DesignPreset::ImpiProcessEmulated
                | DesignPreset::MpichProcessEmulated
        )
    }

    /// Series label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            DesignPreset::OmpiProcess => "OMPI Process",
            DesignPreset::OmpiThread => "OMPI Thread",
            DesignPreset::OmpiThreadCris => "OMPI Thread + CRIs",
            DesignPreset::OmpiThreadCrisStar => "OMPI Thread + CRIs*",
            DesignPreset::ImpiThreadEmulated => "IMPI Thread",
            DesignPreset::ImpiProcessEmulated => "IMPI Process",
            DesignPreset::MpichThreadEmulated => "MPICH Thread",
            DesignPreset::MpichProcessEmulated => "MPICH Process",
        }
    }

    /// The design configuration this preset denotes. `num_instances` scales
    /// resource-replicating presets (ignored by the fixed designs).
    pub fn config(self, num_instances: usize) -> DesignConfig {
        match self {
            DesignPreset::OmpiProcess
            | DesignPreset::ImpiProcessEmulated
            | DesignPreset::MpichProcessEmulated => DesignConfig {
                num_instances: 1,
                ..DesignConfig::default()
            },
            DesignPreset::OmpiThread => DesignConfig::default(),
            DesignPreset::OmpiThreadCris => DesignConfig {
                num_instances,
                assignment: Assignment::Dedicated,
                ..DesignConfig::default()
            },
            DesignPreset::OmpiThreadCrisStar => DesignConfig {
                num_instances,
                assignment: Assignment::Dedicated,
                progress: ProgressMode::Concurrent,
                ..DesignConfig::default()
            },
            DesignPreset::ImpiThreadEmulated => DesignConfig {
                lock_model: LockModel::GlobalCriticalSection,
                ..DesignConfig::default()
            },
            DesignPreset::MpichThreadEmulated => DesignConfig {
                lock_model: LockModel::GlobalCriticalSection,
                matching: MatchMode::Global,
                ..DesignConfig::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_original_ompi_design() {
        let d = DesignConfig::default();
        assert_eq!(d.num_instances, 1);
        assert_eq!(d.progress, ProgressMode::Serial);
        assert_eq!(d.matching, MatchMode::PerCommunicator);
        assert_eq!(d.lock_model, LockModel::PerInstance);
        assert!(!d.allow_overtaking);
        assert_eq!(d.chaos, None, "no fault plan by default");
        assert_eq!(d.error_handler, ErrorHandler::ErrorsReturn);
    }

    #[test]
    fn chaos_builder_arms_a_plan() {
        let plan = FaultPlan::seeded(7).drop(100);
        let d = DesignConfig::builder()
            .proposed(2)
            .chaos(plan)
            .error_handler(ErrorHandler::ErrorsAreFatal)
            .build()
            .unwrap();
        assert_eq!(d.chaos, Some(plan));
        assert_eq!(d.error_handler, ErrorHandler::ErrorsAreFatal);
        // The plan rides along through preset-style struct updates.
        let d2 = DesignConfig {
            chaos: Some(plan),
            ..DesignConfig::default()
        };
        assert_eq!(d2.chaos, Some(plan));
    }

    #[test]
    fn proposed_design_enables_the_papers_machinery() {
        let d = DesignConfig::builder().proposed(20).build().unwrap();
        assert_eq!(d.num_instances, 20);
        assert_eq!(d.assignment, Assignment::Dedicated);
        assert_eq!(d.progress, ProgressMode::Concurrent);
        assert_eq!(d.offload_workers, 0, "proposed design is not offload");
    }

    #[test]
    fn offload_design_dedicates_one_cri_per_worker() {
        let d = DesignConfig::builder().offload(4).build().unwrap();
        assert_eq!(d.offload_workers, 4);
        assert_eq!(d.num_instances, 4);
        assert_eq!(d.assignment, Assignment::Dedicated);
        assert_eq!(d.progress, ProgressMode::Concurrent);
        // Zero workers would be "offload to nobody"; clamp to one.
        let clamped = DesignConfig::builder().offload(0).build().unwrap();
        assert_eq!(clamped.offload_workers, 1);
    }

    #[test]
    fn builder_setters_cover_every_axis() {
        let d = DesignConfig::builder()
            .num_instances(3)
            .assignment(Assignment::RoundRobin)
            .progress(ProgressMode::Concurrent)
            .matching(MatchMode::Global)
            .lock_model(LockModel::GlobalCriticalSection)
            .allow_overtaking(true)
            .thread_level(ThreadLevel::Serialized)
            .build()
            .unwrap();
        assert_eq!(d.num_instances, 3);
        assert_eq!(d.assignment, Assignment::RoundRobin);
        assert_eq!(d.progress, ProgressMode::Concurrent);
        assert_eq!(d.matching, MatchMode::Global);
        assert_eq!(d.lock_model, LockModel::GlobalCriticalSection);
        assert!(d.allow_overtaking);
        assert_eq!(d.thread_level, ThreadLevel::Serialized);
    }

    #[test]
    fn builder_rejects_incompatible_combinations() {
        // Offload's whole point is keeping app threads out of the locks; a
        // global critical section would serialize everything anyway.
        let err = DesignConfig::builder()
            .offload(2)
            .lock_model(LockModel::GlobalCriticalSection)
            .build()
            .unwrap_err();
        assert_eq!(err.error_class(), 13, "MPI_ERR_ARG");
        assert!(err.to_string().contains("global critical section"));

        let err = DesignConfig::builder()
            .num_instances(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least one"));

        // offload_workers() alone does not imply the rest of the offload
        // preset, but still trips the same validation.
        assert!(DesignConfig::builder()
            .offload_workers(1)
            .lock_model(LockModel::GlobalCriticalSection)
            .build()
            .is_err());
    }

    #[test]
    fn presets_cover_fig5_series() {
        assert_eq!(DesignPreset::ALL.len(), 8);
        let labels: Vec<_> = DesignPreset::ALL.iter().map(|p| p.label()).collect();
        assert!(labels.contains(&"OMPI Thread + CRIs*"));
        // Process presets are single-instance.
        for p in DesignPreset::ALL {
            if p.is_process_mode() {
                assert_eq!(p.config(20).num_instances, 1);
            }
        }
        // MPICH emulation uses the global queue.
        assert_eq!(
            DesignPreset::MpichThreadEmulated.config(1).matching,
            MatchMode::Global
        );
    }
}
