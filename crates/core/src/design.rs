//! The design space of the study: every axis the paper varies.

pub use fairmpi_chaos::FaultPlan;
pub use fairmpi_cri::Assignment;
pub use fairmpi_progress::ProgressMode;

/// How matching state is laid out (the Fig. 3b vs Fig. 3c axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchMode {
    /// OB1-style: one matcher (and one matching lock) per communicator, so
    /// threads on different communicators match concurrently.
    PerCommunicator,
    /// MPICH/UCX-style: a single global matcher and lock for the whole
    /// process, regardless of communicator.
    Global,
}

/// Coarse locking model, used to emulate other implementations' threading
/// designs for the Fig. 5 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockModel {
    /// The paper's design: per-instance locks only.
    PerInstance,
    /// A process-wide critical section around every MPI call (send
    /// initiation and each progress pass) — the classic "big lock" of
    /// `MPI_THREAD_MULTIPLE` support in most implementations.
    GlobalCriticalSection,
}

/// MPI threading levels (paper §II-A). The runtime always *grants*
/// `Multiple`; lower levels only relax internal protection the way real
/// implementations do, and are provided for completeness of the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadLevel {
    /// One thread per process.
    Single,
    /// Many threads, only the main thread calls MPI.
    Funneled,
    /// Many threads call MPI, never concurrently.
    Serialized,
    /// Full thread concurrency — the subject of the study.
    Multiple,
}

/// What happens when an operation fails irrecoverably (retry budget
/// exhausted, every instance dead) — the MPI error-handler axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorHandler {
    /// `MPI_ERRORS_RETURN`: the failed request's `wait` returns the error
    /// and the rest of the world keeps running.
    ErrorsReturn,
    /// `MPI_ERRORS_ARE_FATAL`: the first irrecoverable failure panics the
    /// observing thread (the closest in-process analog of aborting the job).
    ErrorsAreFatal,
}

/// The complete internal design configuration of one [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignConfig {
    /// Number of communication resources instances to allocate per rank
    /// (clamped by the fabric's hardware context limit).
    pub num_instances: usize,
    /// How threads are assigned an instance (Algorithm 1).
    pub assignment: Assignment,
    /// Serial or concurrent progress engine (Algorithm 2).
    pub progress: ProgressMode,
    /// Per-communicator or global matching.
    pub matching: MatchMode,
    /// Per-instance locks, or a global critical section emulating big-lock
    /// implementations.
    pub lock_model: LockModel,
    /// Default `mpi_assert_allow_overtaking` for new communicators.
    pub allow_overtaking: bool,
    /// Requested threading level.
    pub thread_level: ThreadLevel,
    /// Number of dedicated offload (communication) worker threads; 0
    /// disables offload and application threads drive the engine directly.
    /// With offload enabled, every `isend`/`irecv`/`put`/`flush` enqueues a
    /// descriptor on a lock-free command queue instead of touching the CRI
    /// and matching locks.
    pub offload_workers: usize,
    /// Optional deterministic fault plan. `None` (the default) leaves the
    /// fabric a perfect wire and the reliability layer entirely unbuilt —
    /// the happy path is bit-identical to a chaos-free build. A world also
    /// picks up a plan from `FAIRMPI_CHAOS_*` env keys when this is unset.
    pub chaos: Option<FaultPlan>,
    /// Error-handler semantics for irrecoverable transport failures.
    pub error_handler: ErrorHandler,
}

impl Default for DesignConfig {
    /// The *original* Open MPI multithreaded design the paper starts from:
    /// one shared instance, serialized progress, per-communicator (OB1)
    /// matching, ordering enforced.
    fn default() -> Self {
        Self {
            num_instances: 1,
            assignment: Assignment::RoundRobin,
            progress: ProgressMode::Serial,
            matching: MatchMode::PerCommunicator,
            lock_model: LockModel::PerInstance,
            allow_overtaking: false,
            thread_level: ThreadLevel::Multiple,
            offload_workers: 0,
            chaos: None,
            error_handler: ErrorHandler::ErrorsReturn,
        }
    }
}

impl DesignConfig {
    /// The paper's full proposal: `n` dedicated CRIs, concurrent progress.
    /// (Concurrent *matching* additionally requires the application to use
    /// one communicator per thread pair, as in Fig. 3c.)
    pub fn proposed(num_instances: usize) -> Self {
        Self {
            num_instances,
            assignment: Assignment::Dedicated,
            progress: ProgressMode::Concurrent,
            ..Self::default()
        }
    }

    /// Arm a deterministic fault plan on worlds built from this config.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Select the error-handler semantics for irrecoverable failures.
    pub fn error_handler(mut self, handler: ErrorHandler) -> Self {
        self.error_handler = handler;
        self
    }

    /// The software-offload design point: `workers` dedicated communication
    /// threads, each owning its own CRI (dedicated assignment, concurrent
    /// progress), fed by a lock-free command queue. Application threads
    /// never take the instance or matching locks on the fast path.
    pub fn offload(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            num_instances: workers,
            assignment: Assignment::Dedicated,
            progress: ProgressMode::Concurrent,
            offload_workers: workers,
            ..Self::default()
        }
    }
}

/// Named design points used in the paper's Fig. 5 comparison.
///
/// The Intel MPI and MPICH entries are *emulations of those
/// implementations' documented threading designs* (a global critical
/// section protecting communication and progress), not their code; see
/// DESIGN.md §1. Process-mode entries use single-threaded ranks, where all
/// implementations behave alike up to constant factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPreset {
    /// Open MPI in process mode (communication between processes).
    OmpiProcess,
    /// Open MPI 4.0 threaded baseline: 1 instance, serial progress.
    OmpiThread,
    /// Baseline plus multiple CRIs with dedicated assignment ("OMPI Thread
    /// + CRIs", dark red in Fig. 5).
    OmpiThreadCris,
    /// CRIs plus concurrent progress plus concurrent matching ("OMPI Thread
    /// + CRIs*", black dotted in Fig. 5). Requires a communicator per pair.
    OmpiThreadCrisStar,
    /// Intel-MPI-like threaded design: global critical section.
    ImpiThreadEmulated,
    /// MPICH-like threaded design: global critical section plus a single
    /// global matching queue.
    MpichThreadEmulated,
    /// Intel-MPI-like process mode (same machinery as `OmpiProcess`).
    ImpiProcessEmulated,
    /// MPICH-like process mode.
    MpichProcessEmulated,
}

impl DesignPreset {
    /// All presets, in the order Fig. 5's legend lists them.
    pub const ALL: [DesignPreset; 8] = [
        DesignPreset::OmpiProcess,
        DesignPreset::OmpiThread,
        DesignPreset::OmpiThreadCris,
        DesignPreset::OmpiThreadCrisStar,
        DesignPreset::ImpiProcessEmulated,
        DesignPreset::ImpiThreadEmulated,
        DesignPreset::MpichProcessEmulated,
        DesignPreset::MpichThreadEmulated,
    ];

    /// Whether this preset runs in process mode (pairs of single-threaded
    /// ranks) rather than thread mode (two ranks, many threads).
    pub fn is_process_mode(self) -> bool {
        matches!(
            self,
            DesignPreset::OmpiProcess
                | DesignPreset::ImpiProcessEmulated
                | DesignPreset::MpichProcessEmulated
        )
    }

    /// Series label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            DesignPreset::OmpiProcess => "OMPI Process",
            DesignPreset::OmpiThread => "OMPI Thread",
            DesignPreset::OmpiThreadCris => "OMPI Thread + CRIs",
            DesignPreset::OmpiThreadCrisStar => "OMPI Thread + CRIs*",
            DesignPreset::ImpiThreadEmulated => "IMPI Thread",
            DesignPreset::ImpiProcessEmulated => "IMPI Process",
            DesignPreset::MpichThreadEmulated => "MPICH Thread",
            DesignPreset::MpichProcessEmulated => "MPICH Process",
        }
    }

    /// The design configuration this preset denotes. `num_instances` scales
    /// resource-replicating presets (ignored by the fixed designs).
    pub fn config(self, num_instances: usize) -> DesignConfig {
        match self {
            DesignPreset::OmpiProcess
            | DesignPreset::ImpiProcessEmulated
            | DesignPreset::MpichProcessEmulated => DesignConfig {
                num_instances: 1,
                ..DesignConfig::default()
            },
            DesignPreset::OmpiThread => DesignConfig::default(),
            DesignPreset::OmpiThreadCris => DesignConfig {
                num_instances,
                assignment: Assignment::Dedicated,
                ..DesignConfig::default()
            },
            DesignPreset::OmpiThreadCrisStar => DesignConfig {
                num_instances,
                assignment: Assignment::Dedicated,
                progress: ProgressMode::Concurrent,
                ..DesignConfig::default()
            },
            DesignPreset::ImpiThreadEmulated => DesignConfig {
                lock_model: LockModel::GlobalCriticalSection,
                ..DesignConfig::default()
            },
            DesignPreset::MpichThreadEmulated => DesignConfig {
                lock_model: LockModel::GlobalCriticalSection,
                matching: MatchMode::Global,
                ..DesignConfig::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_original_ompi_design() {
        let d = DesignConfig::default();
        assert_eq!(d.num_instances, 1);
        assert_eq!(d.progress, ProgressMode::Serial);
        assert_eq!(d.matching, MatchMode::PerCommunicator);
        assert_eq!(d.lock_model, LockModel::PerInstance);
        assert!(!d.allow_overtaking);
        assert_eq!(d.chaos, None, "no fault plan by default");
        assert_eq!(d.error_handler, ErrorHandler::ErrorsReturn);
    }

    #[test]
    fn chaos_builder_arms_a_plan() {
        let plan = FaultPlan::seeded(7).drop(100);
        let d = DesignConfig::proposed(2)
            .chaos(plan)
            .error_handler(ErrorHandler::ErrorsAreFatal);
        assert_eq!(d.chaos, Some(plan));
        assert_eq!(d.error_handler, ErrorHandler::ErrorsAreFatal);
        // The plan rides along through preset-style struct updates.
        let d2 = DesignConfig {
            chaos: Some(plan),
            ..DesignConfig::default()
        };
        assert_eq!(d2.chaos, Some(plan));
    }

    #[test]
    fn proposed_design_enables_the_papers_machinery() {
        let d = DesignConfig::proposed(20);
        assert_eq!(d.num_instances, 20);
        assert_eq!(d.assignment, Assignment::Dedicated);
        assert_eq!(d.progress, ProgressMode::Concurrent);
        assert_eq!(d.offload_workers, 0, "proposed design is not offload");
    }

    #[test]
    fn offload_design_dedicates_one_cri_per_worker() {
        let d = DesignConfig::offload(4);
        assert_eq!(d.offload_workers, 4);
        assert_eq!(d.num_instances, 4);
        assert_eq!(d.assignment, Assignment::Dedicated);
        assert_eq!(d.progress, ProgressMode::Concurrent);
        // Zero workers would be "offload to nobody"; clamp to one.
        assert_eq!(DesignConfig::offload(0).offload_workers, 1);
    }

    #[test]
    fn presets_cover_fig5_series() {
        assert_eq!(DesignPreset::ALL.len(), 8);
        let labels: Vec<_> = DesignPreset::ALL.iter().map(|p| p.label()).collect();
        assert!(labels.contains(&"OMPI Thread + CRIs*"));
        // Process presets are single-instance.
        for p in DesignPreset::ALL {
            if p.is_process_mode() {
                assert_eq!(p.config(20).num_instances, 1);
            }
        }
        // MPICH emulation uses the global queue.
        assert_eq!(
            DesignPreset::MpichThreadEmulated.config(1).matching,
            MatchMode::Global
        );
    }
}
