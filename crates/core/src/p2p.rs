//! Two-sided point-to-point operations.

use fairmpi_fabric::{Envelope, Packet, PacketKind, Rank, Tag, ANY_SOURCE, ANY_TAG};
use fairmpi_matching::{PostOutcome, PostedRecv};
use fairmpi_spc::Counter;
use fairmpi_trace as trace;

use crate::comm::Communicator;
use crate::error::{MpiError, Result};
use crate::proc::Proc;
use crate::request::{Message, Request};

impl Proc {
    fn validate_send(&self, dst: Rank, tag: Tag) -> Result<()> {
        self.state.validate_rank(dst)?;
        if tag < 0 {
            return Err(MpiError::InvalidTag(tag));
        }
        Ok(())
    }

    fn validate_recv(&self, src: i32, tag: Tag) -> Result<()> {
        if src != ANY_SOURCE {
            if src < 0 {
                return Err(MpiError::InvalidRank(src));
            }
            self.state.validate_rank(src as Rank)?;
        }
        if tag < 0 && tag != ANY_TAG {
            return Err(MpiError::InvalidTag(tag));
        }
        Ok(())
    }

    /// Nonblocking send (`MPI_Isend`).
    ///
    /// Messages at most the fabric's eager threshold travel with their
    /// envelope; longer ones use the rendezvous protocol (RTS/CTS/DATA).
    /// Either way the payload is captured immediately, so the buffer is
    /// reusable on return — completion of the request signals that the
    /// runtime handed everything to the network.
    pub fn isend(&self, buf: &[u8], dst: Rank, tag: Tag, comm: Communicator) -> Result<Request> {
        self.validate_send(dst, tag)?;
        self.isend_unchecked(buf, dst, tag, comm)
    }

    /// `isend` without user-tag validation; collectives use it with
    /// reserved negative tags that wildcard receives can never match.
    pub(crate) fn isend_unchecked(
        &self,
        buf: &[u8],
        dst: Rank,
        tag: Tag,
        comm: Communicator,
    ) -> Result<Request> {
        let _span = trace::span("mpi.send");
        let st = &self.state;
        let cs = st.comm_state(comm.id)?;
        if dst as usize >= cs.size {
            return Err(MpiError::InvalidRank(dst as i32));
        }
        let eager = buf.len() <= st.fabric.config().eager_threshold;
        let req = if eager {
            st.requests.new_send(st.rank, tag, None)
        } else {
            st.requests.new_send(st.rank, tag, Some(buf.to_vec()))
        };

        // Sequence assignment happens outside the instance lock — the race
        // between drawing a number and injecting the packet is the origin
        // of out-of-sequence arrivals under thread concurrency.
        let seq = cs.sequencer.next(dst);
        let envelope = Envelope {
            src: st.rank,
            dst,
            comm: comm.id,
            tag,
            seq,
        };

        // Build the wire packet (eager payload, or the rendezvous RTS whose
        // completion token 0 marks it as control-only).
        let (packet, cq_token) = if eager {
            st.spc.inc(Counter::EagerSends);
            (Packet::eager(envelope, buf.to_vec()), req.token)
        } else {
            st.spc.inc(Counter::RendezvousSends);
            let rts = Packet::with_kind(
                envelope,
                PacketKind::RendezvousRts {
                    len: buf.len(),
                    sender_token: req.token,
                },
                Vec::new(),
            );
            (rts, 0)
        };

        if let Some(rt) = st.offload_runtime() {
            // Offload: enqueue the descriptor; a worker injects it. The
            // sequence number above was already drawn in program order, so
            // worker interleaving cannot overtake. A refused submission
            // (fail-fast backpressure, or shutdown racing) falls through to
            // the direct path with the same packet.
            match rt.submit(fairmpi_offload::Command::Send {
                packet,
                token: req.token,
                cq_token,
            }) {
                Ok(()) => return Ok(Request { token: req.token }),
                Err(fairmpi_offload::Command::Send {
                    packet, cq_token, ..
                }) => {
                    let _big = st.maybe_big_lock();
                    st.send_packet(packet, cq_token);
                    return Ok(Request { token: req.token });
                }
                Err(_) => unreachable!("send submission hands back a send"),
            }
        }

        let _big = st.maybe_big_lock();
        st.send_packet(packet, cq_token);
        Ok(Request { token: req.token })
    }

    /// Blocking send (`MPI_Send`): `isend` + `wait`.
    pub fn send(&self, buf: &[u8], dst: Rank, tag: Tag, comm: Communicator) -> Result<()> {
        let req = self.isend(buf, dst, tag, comm)?;
        self.wait(&req).map(|_| ())
    }

    /// Nonblocking receive (`MPI_Irecv`) into an internal buffer of
    /// `capacity` bytes. `src` may be [`ANY_SOURCE`], `tag` may be
    /// [`ANY_TAG`]. The message is returned by [`Proc::wait`].
    pub fn irecv(
        &self,
        capacity: usize,
        src: i32,
        tag: Tag,
        comm: Communicator,
    ) -> Result<Request> {
        self.validate_recv(src, tag)?;
        self.irecv_unchecked(capacity, src, tag, comm)
    }

    /// `irecv` without user-tag validation (reserved-tag collectives).
    pub(crate) fn irecv_unchecked(
        &self,
        capacity: usize,
        src: i32,
        tag: Tag,
        comm: Communicator,
    ) -> Result<Request> {
        let _span = trace::span("mpi.recv");
        let st = &self.state;
        st.comm_state(comm.id)?;
        let req = st.requests.new_recv(capacity);
        let posted = PostedRecv {
            token: req.token,
            comm: comm.id,
            src,
            tag,
        };
        if let Some(rt) = st.offload_runtime() {
            // Offload: the descriptor carries an order ticket so workers
            // post receives in program order (the matcher serves posted
            // receives FIFO). Never fails — refusals post inline through
            // the same ordering protocol.
            rt.submit_recv(posted);
            return Ok(Request { token: req.token });
        }
        let _big = st.maybe_big_lock();
        let (outcome, _work) = st.with_matcher(comm.id, |m| m.post_recv(posted))?;
        if let PostOutcome::Matched(packet) = outcome {
            // An unexpected message was already waiting; complete (or, for
            // a rendezvous RTS, grant) it right here.
            st.complete_match(fairmpi_matching::MatchEvent {
                token: req.token,
                packet,
            });
        }
        Ok(Request { token: req.token })
    }

    /// Blocking receive (`MPI_Recv`): `irecv` + `wait`.
    pub fn recv(&self, capacity: usize, src: i32, tag: Tag, comm: Communicator) -> Result<Message> {
        let req = self.irecv(capacity, src, tag, comm)?;
        self.wait(&req)
    }

    /// Block until a request completes (`MPI_Wait`), progressing the
    /// engine while waiting. Send requests yield an empty acknowledgment
    /// message; receive requests yield the received message.
    pub fn wait(&self, request: &Request) -> Result<Message> {
        let _span = trace::span("mpi.wait");
        let st = &self.state;
        let inner = st
            .requests
            .get(request.token)
            .ok_or(MpiError::InvalidRequest(request.token))?;
        let mut idle_spins = 0u32;
        while !inner.is_done() {
            // Drives the engine directly, or — in offload mode — only
            // drains this thread's completion notifications while the
            // workers progress.
            if st.advance() == 0 {
                idle_spins += 1;
                if idle_spins > 64 {
                    std::thread::yield_now();
                }
            } else {
                idle_spins = 0;
            }
        }
        st.requests.remove(request.token);
        inner.take_outcome()
    }

    /// Nonblocking completion test (`MPI_Test`). Returns `Ok(Some(msg))`
    /// and reaps the request when complete; `Ok(None)` otherwise (after one
    /// progress pass).
    pub fn test(&self, request: &Request) -> Result<Option<Message>> {
        let st = &self.state;
        let inner = st
            .requests
            .get(request.token)
            .ok_or(MpiError::InvalidRequest(request.token))?;
        if !inner.is_done() {
            st.advance();
        }
        if inner.is_done() {
            st.requests.remove(request.token);
            inner.take_outcome().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Wait for every request (`MPI_Waitall`); outcomes in request order.
    pub fn waitall(&self, requests: &[Request]) -> Result<Vec<Message>> {
        requests.iter().map(|r| self.wait(r)).collect()
    }

    /// Wait for *one* of the requests to complete (`MPI_Waitany`),
    /// returning its index and outcome and reaping only that request.
    pub fn wait_any(&self, requests: &[Request]) -> Result<(usize, Message)> {
        let st = &self.state;
        if requests.is_empty() {
            return Err(MpiError::InvalidRequest(0));
        }
        let inners: Vec<_> = requests
            .iter()
            .map(|r| {
                st.requests
                    .get(r.token)
                    .ok_or(MpiError::InvalidRequest(r.token))
            })
            .collect::<Result<_>>()?;
        loop {
            for (i, inner) in inners.iter().enumerate() {
                if inner.is_done() {
                    st.requests.remove(requests[i].token);
                    return inner.take_outcome().map(|m| (i, m));
                }
            }
            if st.advance() == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Blocking probe (`MPI_Probe`): wait until a matching message is
    /// enqueued unexpected, returning `(src, tag)` without receiving it.
    pub fn probe(&self, src: i32, tag: Tag, comm: Communicator) -> Result<(Rank, Tag)> {
        loop {
            if let Some(found) = self.iprobe(src, tag, comm)? {
                return Ok(found);
            }
            if self.state.advance() == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Nonblocking probe (`MPI_Iprobe`).
    pub fn iprobe(&self, src: i32, tag: Tag, comm: Communicator) -> Result<Option<(Rank, Tag)>> {
        self.validate_recv(src, tag)?;
        self.state.with_matcher(comm.id, |m| {
            m.iprobe(comm.id, src, tag).map(|e| (e.src, e.tag))
        })
    }

    /// Cancel a pending receive (`MPI_Cancel`). Returns true if the receive
    /// was still posted (and is now cancelled); false if it already matched.
    pub fn cancel_recv(&self, request: &Request, comm: Communicator) -> Result<bool> {
        let st = &self.state;
        let inner = st
            .requests
            .get(request.token)
            .ok_or(MpiError::InvalidRequest(request.token))?;
        if inner.is_cancelled() {
            return Ok(true);
        }
        let removed = st.with_matcher(comm.id, |m| m.cancel(request.token))?;
        if removed {
            inner.cancel();
        }
        Ok(removed)
    }

    /// Combined send and receive (`MPI_Sendrecv`).
    #[allow(clippy::too_many_arguments)] // mirrors the MPI_Sendrecv signature
    pub fn sendrecv(
        &self,
        send_buf: &[u8],
        dst: Rank,
        send_tag: Tag,
        recv_capacity: usize,
        src: i32,
        recv_tag: Tag,
        comm: Communicator,
    ) -> Result<Message> {
        let rreq = self.irecv(recv_capacity, src, recv_tag, comm)?;
        let sreq = self.isend(send_buf, dst, send_tag, comm)?;
        let msg = self.wait(&rreq)?;
        self.wait(&sreq)?;
        Ok(msg)
    }
}
