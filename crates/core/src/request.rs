//! Requests: the handles behind nonblocking operations.

use fairmpi_sync::atomic::{AtomicU64, AtomicU8, Ordering};
use fairmpi_sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use fairmpi_fabric::{Rank, Tag};

use crate::error::MpiError;

/// A completed point-to-point message, as returned by [`crate::Proc::recv`]
/// and [`crate::Proc::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Sending rank (useful with `ANY_SOURCE`).
    pub src: Rank,
    /// Message tag (useful with `ANY_TAG`).
    pub tag: Tag,
}

impl Message {
    /// The acknowledgment returned when waiting on a *send* request.
    pub(crate) fn send_ack(src: Rank, tag: Tag) -> Self {
        Self {
            data: Vec::new(),
            src,
            tag,
        }
    }
}

/// Opaque handle to a pending nonblocking operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Request {
    pub(crate) token: u64,
}

/// What a request is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqKind {
    Send,
    Recv,
}

const PENDING: u8 = 0;
const COMPLETE: u8 = 1;
const CANCELLED: u8 = 2;
const FAILED: u8 = 3;

/// Shared state of one in-flight operation.
#[derive(Debug)]
pub(crate) struct RequestInner {
    pub(crate) token: u64,
    pub(crate) kind: ReqKind,
    status: AtomicU8,
    /// Receive-buffer capacity (recv requests only).
    pub(crate) capacity: usize,
    /// Identity of the requester, for send acks.
    pub(crate) src: Rank,
    pub(crate) tag: Tag,
    /// Completed message (recv) — filled exactly once at completion.
    payload: Mutex<Option<Message>>,
    /// Rendezvous send payload parked until the CTS arrives.
    pub(crate) stash: Mutex<Option<Vec<u8>>>,
    /// Failure cause, if the request errored.
    error: Mutex<Option<MpiError>>,
}

impl RequestInner {
    pub(crate) fn is_done(&self) -> bool {
        self.status.load(Ordering::Acquire) != PENDING
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.status.load(Ordering::Acquire) == CANCELLED
    }

    /// Mark complete with a received message.
    pub(crate) fn complete_with(&self, msg: Message) {
        *self.payload.lock() = Some(msg);
        self.status.store(COMPLETE, Ordering::Release);
    }

    /// Mark a send complete.
    pub(crate) fn complete_send(&self) {
        self.status.store(COMPLETE, Ordering::Release);
    }

    /// Mark cancelled.
    pub(crate) fn cancel(&self) {
        self.status.store(CANCELLED, Ordering::Release);
    }

    /// Mark failed.
    pub(crate) fn fail(&self, err: MpiError) {
        *self.error.lock() = Some(err);
        self.status.store(FAILED, Ordering::Release);
    }

    /// Consume the outcome of a finished request.
    pub(crate) fn take_outcome(&self) -> Result<Message, MpiError> {
        match self.status.load(Ordering::Acquire) {
            COMPLETE => match self.kind {
                ReqKind::Recv => Ok(self
                    .payload
                    .lock()
                    .take()
                    .expect("completed recv carries a message")),
                ReqKind::Send => Ok(Message::send_ack(self.src, self.tag)),
            },
            CANCELLED => Err(MpiError::Cancelled),
            FAILED => Err(self
                .error
                .lock()
                .clone()
                .expect("failed request carries an error")),
            _ => unreachable!("take_outcome on a pending request"),
        }
    }
}

const SHARDS: usize = 16;

/// The per-rank table of live requests, sharded to keep token lookups off
/// the contended paths.
#[derive(Debug)]
pub(crate) struct RequestTable {
    next_token: AtomicU64,
    shards: Vec<Mutex<HashMap<u64, Arc<RequestInner>>>>,
}

impl RequestTable {
    pub(crate) fn new() -> Self {
        Self {
            next_token: AtomicU64::new(1),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, token: u64) -> &Mutex<HashMap<u64, Arc<RequestInner>>> {
        &self.shards[(token as usize) % SHARDS]
    }

    fn insert(&self, inner: RequestInner) -> Arc<RequestInner> {
        let token = inner.token;
        let arc = Arc::new(inner);
        self.shard(token).lock().insert(token, Arc::clone(&arc));
        arc
    }

    /// Register a new send request; `stash` carries the payload for
    /// rendezvous sends (None for eager).
    pub(crate) fn new_send(
        &self,
        src: Rank,
        tag: Tag,
        stash: Option<Vec<u8>>,
    ) -> Arc<RequestInner> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.insert(RequestInner {
            token,
            kind: ReqKind::Send,
            status: AtomicU8::new(PENDING),
            capacity: 0,
            src,
            tag,
            payload: Mutex::new(None),
            stash: Mutex::new(stash),
            error: Mutex::new(None),
        })
    }

    /// Register a new receive request with the given buffer capacity.
    pub(crate) fn new_recv(&self, capacity: usize) -> Arc<RequestInner> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.insert(RequestInner {
            token,
            kind: ReqKind::Recv,
            status: AtomicU8::new(PENDING),
            capacity,
            src: 0,
            tag: 0,
            payload: Mutex::new(None),
            stash: Mutex::new(None),
            error: Mutex::new(None),
        })
    }

    /// Look up a live request.
    pub(crate) fn get(&self, token: u64) -> Option<Arc<RequestInner>> {
        self.shard(token).lock().get(&token).cloned()
    }

    /// Drop a request from the table (after its outcome is consumed).
    pub(crate) fn remove(&self, token: u64) {
        self.shard(token).lock().remove(&token);
    }

    /// Number of live requests (diagnostics).
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique_and_monotone() {
        let t = RequestTable::new();
        let a = t.new_send(0, 0, None);
        let b = t.new_recv(10);
        assert!(b.token > a.token);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn recv_lifecycle() {
        let t = RequestTable::new();
        let r = t.new_recv(16);
        assert!(!r.is_done());
        r.complete_with(Message {
            data: vec![1, 2],
            src: 3,
            tag: 4,
        });
        assert!(r.is_done());
        let msg = r.take_outcome().unwrap();
        assert_eq!(msg.data, vec![1, 2]);
        assert_eq!(msg.src, 3);
        t.remove(r.token);
        assert!(t.get(r.token).is_none());
    }

    #[test]
    fn send_outcome_is_an_ack() {
        let t = RequestTable::new();
        let r = t.new_send(7, 9, None);
        r.complete_send();
        let msg = r.take_outcome().unwrap();
        assert!(msg.data.is_empty());
        assert_eq!(msg.src, 7);
        assert_eq!(msg.tag, 9);
    }

    #[test]
    fn cancel_and_fail_propagate() {
        let t = RequestTable::new();
        let r = t.new_recv(4);
        r.cancel();
        assert_eq!(r.take_outcome().unwrap_err(), MpiError::Cancelled);
        let r2 = t.new_recv(4);
        r2.fail(MpiError::Truncated {
            message_len: 8,
            capacity: 4,
        });
        assert!(matches!(
            r2.take_outcome().unwrap_err(),
            MpiError::Truncated { .. }
        ));
    }

    #[test]
    fn stash_holds_rendezvous_payload() {
        let t = RequestTable::new();
        let r = t.new_send(0, 0, Some(vec![9; 100]));
        let payload = r.stash.lock().take().unwrap();
        assert_eq!(payload.len(), 100);
        assert!(r.stash.lock().is_none(), "stash consumed once");
    }
}
