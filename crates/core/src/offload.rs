//! Software-offload wiring: the bridge between the public API and the
//! `fairmpi-offload` engine.
//!
//! When a world is built with `DesignConfig::builder().offload(n)`, application
//! threads stop touching the CRI and matching locks. Instead every
//! `isend`/`irecv`/`put`/`flush` packages a descriptor and enqueues it on
//! the engine's lock-free command queue; dedicated worker threads drain the
//! queue, run the descriptors through the *real* engine (each worker binds
//! its own dedicated CRI through the pool's thread-local assignment), and
//! notify per-thread completion queues that `wait`/`test` poll.
//!
//! Ordering notes:
//!
//! * **Sends** keep the MPI non-overtaking rule because the sequence number
//!   is drawn by the application thread at enqueue time; the matcher
//!   reorders out-of-sequence arrivals no matter which worker injects.
//! * **Receive posting order** is program order per thread, which matters
//!   because the matcher serves posted receives FIFO. Each recv descriptor
//!   carries an order ticket drawn at enqueue; workers funnel them through
//!   [`RecvSequencer`], a turn-gated stash, so posting happens in ticket
//!   order regardless of which worker drains which batch.
//! * **Flushes** are deferred: the worker registers the request and the
//!   engine's progress pass completes it once the window's pending count
//!   toward the target drains to zero.
//!
//! Refused submissions (queue full under `TryAgain`, or engine shut down)
//! fall back to the direct path, so `Proc` handles stay usable after the
//! `World` is dropped and fail-fast backpressure degrades gracefully.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use fairmpi_sync::atomic::{AtomicU64, Ordering};
use fairmpi_sync::Mutex;

use fairmpi_fabric::{Completion, CompletionKind, Rank};
use fairmpi_matching::{MatchEvent, PostOutcome, PostedRecv};
use fairmpi_offload::{
    Backpressure, Command, CompletionQueue, OffloadBackend, OffloadConfig, OffloadEngine,
    SubmitError,
};
use fairmpi_spc::Counter;

use crate::env::{EnvKey, EnvValue};
use crate::proc::ProcState;
use crate::rma::{WindowId, WindowState};

/// Resolve the `FAIRMPI_OFFLOAD_*` runtime tuning keys on top of the
/// design's worker count:
///
/// * `FAIRMPI_OFFLOAD_QUEUE_CAPACITY` — command-queue slots (default 1024,
///   rounded up to a power of two);
/// * `FAIRMPI_OFFLOAD_BATCH_LIMIT` — max commands a worker drains per batch
///   (default 32);
/// * `FAIRMPI_OFFLOAD_BACKPRESSURE` — `spin`, `yield` (default) or
///   `try_again` (fail fast; refused operations run inline).
///
/// Unparsable values fall back to the default (tuning keys must never turn
/// a working world into a panic).
const QUEUE_CAPACITY: EnvKey<usize> = EnvKey::new("FAIRMPI_OFFLOAD_QUEUE_CAPACITY");
const BATCH_LIMIT: EnvKey<usize> = EnvKey::new("FAIRMPI_OFFLOAD_BATCH_LIMIT");
const BACKPRESSURE: EnvKey<Backpressure> = EnvKey::new("FAIRMPI_OFFLOAD_BACKPRESSURE");

impl EnvValue for Backpressure {
    fn parse_env(raw: &str) -> Result<Self, String> {
        match raw {
            "spin" => Ok(Backpressure::Spin),
            "yield" => Ok(Backpressure::Yield),
            "try_again" => Ok(Backpressure::TryAgain),
            _ => Err(format!("expected spin, yield or try_again, got {raw:?}")),
        }
    }
}

pub(crate) fn offload_config_from_env(workers: usize) -> OffloadConfig {
    let defaults = OffloadConfig::default();
    OffloadConfig {
        workers,
        queue_capacity: QUEUE_CAPACITY
            .get()
            .filter(|&n| n > 0)
            .unwrap_or(defaults.queue_capacity),
        batch_limit: BATCH_LIMIT
            .get()
            .filter(|&n| n > 0)
            .unwrap_or(defaults.batch_limit),
        backpressure: BACKPRESSURE.get_or(Backpressure::Yield),
    }
}

/// Turn-gated stash keeping receive posting in enqueue order across
/// workers. Tickets are dense (drawn by [`OffloadRuntime::submit_recv`]),
/// and every drawn ticket eventually reaches [`ProcBackend::post_ordered`]
/// — via a worker or via the submitter's own refusal fallback — so the turn
/// counter never strands.
#[derive(Default)]
struct RecvSequencer {
    /// Next ticket to hand out (application threads, at enqueue).
    next_order: AtomicU64,
    /// Next ticket allowed to post.
    turn: AtomicU64,
    /// Tickets that arrived ahead of their turn.
    stash: Mutex<BTreeMap<u64, PostedRecv>>,
}

/// A flush request waiting for the window's pending count to drain.
struct DeferredFlush {
    win: Arc<WindowState>,
    target: Option<Rank>,
    token: u64,
}

/// The [`OffloadBackend`] over one rank's real engine state.
pub(crate) struct ProcBackend {
    state: Arc<ProcState>,
    recvs: RecvSequencer,
    flushes: Mutex<Vec<DeferredFlush>>,
}

impl ProcBackend {
    /// Post (or stash) one receive ticket, then drain every consecutive
    /// ticket that is now unblocked. Runs on workers and, for refused
    /// submissions, on the application thread itself; the stash lock makes
    /// the post-and-advance step atomic across both.
    fn post_ordered(&self, order: u64, posted: PostedRecv) {
        let mut stash = self.recvs.stash.lock();
        stash.insert(order, posted);
        self.drain_recvs(&mut stash);
    }

    fn drain_recvs(&self, stash: &mut BTreeMap<u64, PostedRecv>) {
        loop {
            let turn = self.recvs.turn.load(Ordering::Acquire);
            let Some(posted) = stash.remove(&turn) else {
                break;
            };
            self.post_now(posted);
            self.recvs.turn.store(turn + 1, Ordering::Release);
        }
    }

    /// The real matcher post, identical to the direct `irecv` path.
    fn post_now(&self, posted: PostedRecv) {
        let st = &self.state;
        let token = posted.token;
        let comm = posted.comm;
        match st.with_matcher(comm, |m| m.post_recv(posted)) {
            Ok((outcome, _work)) => {
                if let PostOutcome::Matched(packet) = outcome {
                    st.complete_match(MatchEvent { token, packet });
                }
            }
            Err(e) => {
                if let Some(req) = st.requests.get(token) {
                    req.fail(e);
                }
            }
        }
    }

    /// Origin-side put, identical to the direct path except that the
    /// pending count was already raised at enqueue time (so a flush issued
    /// right behind the put can never observe zero and return early).
    fn apply_put(&self, window: u64, target: Rank, offset: usize, data: &[u8]) {
        let st = &self.state;
        let Ok(win) = st.windows.get(WindowId(window as u32)) else {
            // Window freed with the put still queued ("callers must have
            // flushed"); nothing to apply.
            return;
        };
        let guard = st.rma_inject(data.len());
        win.store_bytes(target, offset, data);
        guard.post_completion(Completion {
            token: ProcState::rma_token(&win, target),
            kind: CompletionKind::RmaDone,
        });
        st.spc.inc(Counter::RmaPuts);
        st.spc.add(Counter::BytesSent, data.len() as u64);
    }

    fn register_flush(&self, window: u64, target: Option<Rank>, token: u64) {
        match self.state.windows.get(WindowId(window as u32)) {
            Ok(win) => self
                .flushes
                .lock()
                .push(DeferredFlush { win, target, token }),
            // Window already freed: vacuously drained.
            Err(_) => self.complete_flush(token),
        }
    }

    fn complete_flush(&self, token: u64) {
        if let Some(req) = self.state.requests.get(token) {
            req.complete_send();
        }
        self.state.spc.inc(Counter::RmaFlushes);
    }
}

impl OffloadBackend for ProcBackend {
    fn execute(&self, cmd: Command) {
        match cmd {
            Command::Send {
                packet, cq_token, ..
            } => self.state.send_packet(packet, cq_token),
            Command::Recv { posted, order } => self.post_ordered(order, posted),
            Command::Put {
                window,
                target,
                offset,
                data,
                ..
            } => self.apply_put(window, target, offset, &data),
            Command::Flush {
                window,
                target,
                token,
            } => self.register_flush(window, target, token),
        }
    }

    fn progress(&self) -> usize {
        let mut n = self.state.progress_engine();
        {
            // Opportunistic: a ticket unblocked by another worker's post may
            // still sit in the stash if that worker raced past it.
            let mut stash = self.recvs.stash.lock();
            if !stash.is_empty() {
                self.drain_recvs(&mut stash);
            }
        }
        let mut flushes = self.flushes.lock();
        if !flushes.is_empty() {
            let origin = self.state.rank;
            flushes.retain(|f| {
                let pending = match f.target {
                    Some(t) => f.win.pending_toward(origin, t),
                    None => f.win.pending_total(origin),
                };
                if pending == 0 {
                    self.complete_flush(f.token);
                    n += 1;
                    false
                } else {
                    true
                }
            });
        }
        n
    }

    fn is_complete(&self, token: u64) -> bool {
        self.state
            .requests
            .get(token)
            .map(|r| r.is_done())
            .unwrap_or(true)
    }
}

static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's completion queue per offload runtime (keyed by runtime
    /// id, the same idiom as the CRI pool's thread-local dedicated map).
    static COMPLETIONS: RefCell<HashMap<u64, Arc<CompletionQueue>>> = RefCell::new(HashMap::new());
}

/// One rank's offload runtime: the engine plus the backend handle needed
/// for the refusal fallback of ordered receives.
pub(crate) struct OffloadRuntime {
    engine: Arc<OffloadEngine>,
    backend: Arc<ProcBackend>,
    id: u64,
    completion_capacity: usize,
}

impl OffloadRuntime {
    pub(crate) fn start(state: &Arc<ProcState>, config: OffloadConfig) -> Self {
        let backend = Arc::new(ProcBackend {
            state: Arc::clone(state),
            recvs: RecvSequencer::default(),
            flushes: Mutex::new(Vec::new()),
        });
        let engine = OffloadEngine::start(config, Arc::clone(&backend), Arc::clone(&state.spc));
        Self {
            engine,
            backend,
            id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
            completion_capacity: config.queue_capacity.clamp(64, 1024),
        }
    }

    /// Whether the engine still accepts commands (false once shutdown has
    /// begun; callers then take the direct path).
    pub(crate) fn active(&self) -> bool {
        !self.engine.is_shutdown()
    }

    fn thread_queue(&self) -> Arc<CompletionQueue> {
        COMPLETIONS.with(|m| {
            Arc::clone(
                m.borrow_mut()
                    .entry(self.id)
                    .or_insert_with(|| Arc::new(CompletionQueue::new(self.completion_capacity))),
            )
        })
    }

    /// Enqueue a command whose completion this thread will wait on. On
    /// refusal the command is handed back for the direct path.
    pub(crate) fn submit(&self, cmd: Command) -> Result<(), Command> {
        let reply = self.thread_queue();
        self.engine.submit(cmd, Some(&reply)).map_err(take_back)
    }

    /// Enqueue a command nobody waits on (puts: flush is the sync point).
    pub(crate) fn submit_silent(&self, cmd: Command) -> Result<(), Command> {
        self.engine.submit(cmd, None).map_err(take_back)
    }

    /// Enqueue a receive post. Never fails: a refused submission posts
    /// inline through the same ordering protocol, so the ticket sequence
    /// stays gapless.
    pub(crate) fn submit_recv(&self, posted: PostedRecv) {
        let order = self
            .backend
            .recvs
            .next_order
            .fetch_add(1, Ordering::Relaxed);
        let reply = self.thread_queue();
        match self
            .engine
            .submit(Command::Recv { posted, order }, Some(&reply))
        {
            Ok(()) => {}
            Err(e) => {
                let Command::Recv { posted, order } = take_back(e) else {
                    unreachable!("recv submission hands back a recv");
                };
                self.backend.post_ordered(order, posted);
            }
        }
    }

    /// Drain this thread's completion notifications; returns how many
    /// arrived. The notifications are hints — request status words are the
    /// ground truth — so draining is enough, no dispatch needed.
    pub(crate) fn poll_completions(&self) -> usize {
        let q = self.thread_queue();
        let mut n = 0;
        while q.poll().is_some() {
            n += 1;
        }
        n
    }

    pub(crate) fn begin_shutdown(&self) {
        self.engine.begin_shutdown();
    }

    pub(crate) fn join(&self) {
        self.engine.join();
    }
}

fn take_back(e: SubmitError) -> Command {
    match e {
        SubmitError::WouldBlock(cmd) | SubmitError::Shutdown(cmd) => cmd,
    }
}
