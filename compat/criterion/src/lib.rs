//! Offline stand-in for the `criterion` crate.
//!
//! The container resolves no crates.io packages, so this shim keeps the
//! workspace's `benches/` compiling and running offline. It mirrors the
//! criterion API surface those benches use — `criterion_group!`/
//! `criterion_main!`, `Criterion::bench_function`/`benchmark_group`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `black_box` — with a
//! plain wall-clock harness: a short warm-up, then `sample_size` samples
//! whose per-iteration mean/min/max are printed. No statistics engine, no
//! HTML reports; for calibrated numbers use the figure binaries.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the shim treats all
/// variants identically (one setup per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(function_id: S, parameter: P) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs the measured closure and accumulates timing samples.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration for each sample.
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            per_iter_ns: Vec::new(),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so each sample lasts ≳200 µs.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_micros(200).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.per_iter_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.per_iter_ns.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let n = self.per_iter_ns.len() as f64;
        let mean = self.per_iter_ns.iter().sum::<f64>() / n;
        let min = self
            .per_iter_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
        println!("{name:<48} {mean:>12.1} ns/iter  [min {min:.1}, max {max:.1}]");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Ignored (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: IntoBenchmarkId, F>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<N: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra here).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // FAIRMPI_BENCH_SAMPLES trims runtime in CI.
        let sample_size = std::env::var("FAIRMPI_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Self { sample_size }
    }
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    fn run_one<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion { sample_size: 3 };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { sample_size: 2 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("plain", |b| {
            b.iter_batched(|| 3u32, |v| black_box(v + 1), BatchSize::SmallInput)
        });
        group.finish();
    }
}
