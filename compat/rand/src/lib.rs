//! Offline stand-in for the `rand` crate.
//!
//! Covers exactly the surface the simulator uses: `rngs::SmallRng` seeded
//! with `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer
//! ranges. The generator is xoshiro256** (the same family real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64, so streams are
//! deterministic, well distributed, and cheap — but NOT the bit-identical
//! sequences of crates.io `rand`; seeds were recalibrated where tests
//! depend on exact draws.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling support for [`Rng::gen_range`]; implemented for the
/// integer range shapes the workspace draws from.
pub trait SampleRange<T> {
    /// Draw a value in the range using `draw(n)` ∈ [0, n).
    fn sample(self, rng: &mut dyn FnMut(u64) -> u64) -> T;
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample(self, rng: &mut dyn FnMut(u64) -> u64) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng(self.end - self.start)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample(self, rng: &mut dyn FnMut(u64) -> u64) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng(0); // degenerate full-width range: raw draw
        }
        lo + rng(span + 1)
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample(self, rng: &mut dyn FnMut(u64) -> u64) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng((self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample(self, rng: &mut dyn FnMut(u64) -> u64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng((hi - lo) as u64 + 1) as usize
    }
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = |n: u64| {
            if n == 0 {
                return self.next_u64();
            }
            // Debiased multiply-shift (Lemire): uniform over [0, n).
            let mut m = (self.next_u64() as u128) * (n as u128);
            let mut lo = m as u64;
            if lo < n {
                let t = n.wrapping_neg() % n;
                while lo < t {
                    m = (self.next_u64() as u128) * (n as u128);
                    lo = m as u64;
                }
            }
            (m >> 64) as u64
        };
        range.sample(&mut draw)
    }

    /// A uniform draw over `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let z = r.gen_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
