//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace replaces crates.io `parking_lot` with this local shim: the
//! same lock API surface the runtime uses (`lock()` returning a guard
//! directly, `try_lock()` returning an `Option`), implemented over
//! `std::sync`. Poisoning is deliberately ignored — parking_lot has no
//! poisoning, and the runtime relies on that.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex that hands out guards without a poisoning `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock without poisoning `Result`s.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Shared access only if no writer holds the lock right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access only if the lock is entirely free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().unwrap(), 2);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        assert!(l.try_write().is_none());
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
