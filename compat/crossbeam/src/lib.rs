//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container resolves no crates.io packages, so the workspace
//! replaces `crossbeam` with this shim covering exactly what the runtime
//! uses: `utils::CachePadded`, `queue::SegQueue`, and `thread::scope`.
//! Semantics match crossbeam closely enough for this workload; `SegQueue`
//! trades crossbeam's lock-free segments for a mutexed ring buffer, which
//! is correct (MPSC/MPMC safe) if not equally scalable.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so neighbouring values never
    /// share a cache line (two lines: spatial-prefetcher safe, matching
    /// crossbeam's x86_64 choice).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pad `value` out to its own cache lines.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwrap the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue with crossbeam's `SegQueue` API.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub const fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push an element to the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pop the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Whether the queue is empty at this instant.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Number of queued elements at this instant.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }
}

pub mod thread {
    /// A scope handle mirroring `crossbeam::thread::Scope`: spawned
    /// closures receive a nested scope reference so they can spawn too.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure gets a scope handle (commonly
        /// ignored as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic here
    /// (std scoped-thread semantics) instead of surfacing it in the
    /// returned `Result`; the `Ok` path is identical.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::utils::CachePadded;

    #[test]
    fn cache_padded_is_transparent_and_aligned() {
        let p = CachePadded::new(41u64);
        assert_eq!(*p + 1, 42);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 41);
    }

    #[test]
    fn seg_queue_is_fifo_across_threads() {
        let q = SegQueue::new();
        super::thread::scope(|s| {
            for base in [0u32, 100] {
                s.spawn(move |_| ());
                for i in 0..10 {
                    q.push(base + i);
                }
            }
        })
        .unwrap();
        let mut seen = Vec::new();
        while let Some(v) = q.pop() {
            seen.push(v);
        }
        assert_eq!(seen.len(), 20);
        // FIFO within each producer's pushes.
        let lows: Vec<_> = seen.iter().filter(|v| **v < 100).collect();
        assert!(lows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scope_joins_and_returns_value() {
        let mut counter = 0u32;
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| 21u32);
            h.join().unwrap() * 2
        })
        .unwrap();
        counter += r;
        assert_eq!(counter, 42);
    }
}
