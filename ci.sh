#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. Run from the repo root.
# The workspace vendors its third-party shims under compat/, so everything
# here works without network access.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release, default features) =="
cargo build --release --workspace --offline

echo "== build (trace hooks compiled out) =="
cargo build --offline -p fairmpi-bench --no-default-features

echo "== test =="
cargo test -q --workspace --offline

echo "== test (trace crate, enabled) =="
cargo test -q --offline -p fairmpi-trace --features enabled

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
