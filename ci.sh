#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. Run from the repo root.
# The workspace vendors its third-party shims under compat/, so everything
# here works without network access.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release, default features) =="
cargo build --release --workspace --offline

echo "== build (trace hooks compiled out) =="
cargo build --offline -p fairmpi-bench --no-default-features

echo "== test =="
cargo test -q --workspace --offline

echo "== test (trace crate, enabled) =="
cargo test -q --offline -p fairmpi-trace --features enabled

echo "== sync backend identity (native vs traced) =="
# The traced fairmpi-sync backend must be observationally equivalent to
# the zero-cost native one: the same flagship stress asserts the same
# exact SPC values under both builds.
cargo test -q --offline --test sync_backends
cargo test -q --offline --test sync_backends --features trace

echo "== model check (bounded-preemption interleaving exploration) =="
# Exhaustive DFS over the lock-free core's protocols (offload ring,
# Algorithm 2 fallback sweep, dedup window) ...
cargo test -q --offline -p fairmpi-check 2>&1 | tee /tmp/fairmpi_check.log
! grep -q "FAILED" /tmp/fairmpi_check.log
# ... and the checker must have teeth: all four seeded mutant bugs caught
# with reproducible counterexample schedules.
cargo test --offline -p fairmpi-check --test mutants all_seeded_mutants_caught -- --nocapture \
    > /tmp/fairmpi_mutants.log 2>&1
grep -q "all 4 seeded mutants caught" /tmp/fairmpi_mutants.log

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== doc =="
cargo doc --no-deps --workspace --offline

echo "== pvar smoke test =="
# Tiny grid: the flagship observed run must produce a well-formed,
# non-empty MPI_T pvar dump whose session reads match the SPC snapshot
# (the binary asserts that), and self-comparing the bench report must
# show zero regressions.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
bin=$PWD/target/release
(cd "$smoke_dir" && FAIRMPI_ITERS=2 "$bin/table2" --pvars pvars.json > pvars.log)
grep -q "MPI_T session reads equal the SpcSnapshot values for this run ... PASS" "$smoke_dir/pvars.log"
"$bin/fairmpi-report" --check-pvars "$smoke_dir/pvars.json"
(cd "$smoke_dir" && FAIRMPI_ITERS=2 "$bin/table2" > /dev/null)
"$bin/fairmpi-report" "$smoke_dir/results/BENCH_table2.json" "$smoke_dir/results/BENCH_table2.json"

echo "== offload smoke + regression gate =="
# Tiny grid: the offload flagship read through MPI_T must dump well-formed
# pvars with the session reads matching the SPC snapshot (the four
# offload_* probes included).
(cd "$smoke_dir" && FAIRMPI_ITERS=2 FAIRMPI_MAX_PAIRS=6 \
    "$bin/fig_offload" --pvars offload_pvars.json > offload_pvars.log)
grep -q "MPI_T session reads equal the SpcSnapshot values for this run ... PASS" \
    "$smoke_dir/offload_pvars.log"
"$bin/fairmpi-report" --check-pvars "$smoke_dir/offload_pvars.json"
# The full grid is deterministic under virtual time, so a fresh run must
# match the committed baseline within the noise threshold and every
# printed qualitative check must hold.
(cd "$smoke_dir" && "$bin/fig_offload" > offload.log)
! grep -q "FAIL" "$smoke_dir/offload.log"
"$bin/fairmpi-report" results/BENCH_fig_offload.json \
    "$smoke_dir/results/BENCH_fig_offload.json" --noise 0.05

echo "== degradation: zero-fault identity + regression gate =="
# With no fault plan armed the reliability layer must be invisible: the
# offload grid (which never arms chaos) and the degradation grid (whose
# drop=0 column exercises the chaos-off path) are deterministic under
# virtual time, so fresh runs must be BIT-IDENTICAL to the committed
# baselines — any drift means the chaos hooks leaked into clean runs.
cmp results/fig_offload.csv "$smoke_dir/results/fig_offload.csv"
(cd "$smoke_dir" && "$bin/fig_degradation" > degradation.log)
! grep -q "FAIL" "$smoke_dir/degradation.log"
cmp results/fig_degradation.csv "$smoke_dir/results/fig_degradation.csv"
"$bin/fairmpi-report" results/BENCH_fig_degradation.json \
    "$smoke_dir/results/BENCH_fig_degradation.json" --noise 0.05

echo "== chaos soak (seeded fault injection) =="
# Three seeds of the degradation flagship on a trimmed grid under a 10%
# wire drop. Each run must terminate with every message delivered exactly
# once (sent == received through the MPI_T dump) and must show the
# reliability layer actually working: faults observed, repaired by
# retransmission.
for seed in 3 5 7; do
    (cd "$smoke_dir" && FAIRMPI_ITERS=2 FAIRMPI_MAX_PAIRS=4 \
        "$bin/fig_degradation" --chaos-seed "$seed" --chaos-drop 100 \
        --pvars "chaos_$seed.json" > "chaos_$seed.log")
    grep -q "MPI_T session reads equal the SpcSnapshot values for this run ... PASS" \
        "$smoke_dir/chaos_$seed.log"
    "$bin/fairmpi-report" --check-pvars "$smoke_dir/chaos_$seed.json"
    sent=$(awk '$1 == "fairmpi_messages_sent" {print $2}' "$smoke_dir/chaos_$seed.prom")
    recv=$(awk '$1 == "fairmpi_messages_received" {print $2}' "$smoke_dir/chaos_$seed.prom")
    [ -n "$sent" ] && [ "$sent" -eq "$recv" ]
    grep -Eq '^fairmpi_chaos_drops [1-9]' "$smoke_dir/chaos_$seed.prom"
    grep -Eq '^fairmpi_retransmits [1-9]' "$smoke_dir/chaos_$seed.prom"
done

echo "CI OK"
